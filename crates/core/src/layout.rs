//! Layout and emission of the squashed program (paper §2).
//!
//! The transformed text area consists of, in address order:
//!
//! ```text
//! text_base:   never-compressed code
//!              entry stubs          (2 words each: bsr at,DECOMP ; tag)
//!              decompressor area    (trap window + reserved body)
//!              function offset table
//!              restore-stub area    (filled at runtime by CreateStub)
//!              runtime buffer slots (cache_slots × K bytes)
//!              compressed code blob
//! 0x200000:    data
//! ```
//!
//! Region "buffer images" — the exact bytes a region's decompression
//! produces — are constructed here with all displacements resolved against
//! final addresses, so the runtime decompressor is nothing more than
//! stream-decode-and-copy. Calls out of compressed code to non-buffer-safe
//! callees are stored pre-expanded as the paper's two-instruction sequence
//! (`bsr ra, CreateStub ; br callee`); the paper instead expands during
//! decompression to save a word of *compressed* payload — a deviation
//! documented in `DESIGN.md` (the extra instruction is near-free under
//! Huffman coding because it is identical at every call site).
//!
//! This module implements two stages of the pipeline described in
//! [`crate::stages`]: [`geometry`] + [`emit_nc_text`] + [`build_images`]
//! (the *layout* stage: every address and every region image, fixed before
//! any compression happens) and [`assemble`] (the final stage: segments,
//! statistics and the runtime configuration, consuming the trained model
//! and the encoded blob).

use std::collections::HashMap;

use squash_cfg::link::{branch_disp, hi_lo_split, LinkOptions};
use squash_cfg::{
    AddrTarget, BlockReloc, DataItem, FuncId, JumpTarget, Program, SymRef, Term,
};
use squash_isa::{BraOp, Inst, MemOp, PalOp, Reg};

use crate::footprint::Footprint;
use crate::jumptables::JumpTableStats;
use crate::regions::{self, Region};
use crate::runtime::RuntimeConfig;
use crate::stages::encode::EncodedRegions;
use crate::stages::plan::RegionPlan;
use crate::stages::train::TrainedModel;
use crate::{err, RestoreStubMode, SquashError, SquashOptions};

/// Base address of the squashed text area.
pub const TEXT_BASE: u32 = 0x1000;
/// Fixed base address of the data segment (decoupling data addresses from
/// the compressed blob's size; see module docs).
pub const DATA_BASE: u32 = 0x20_0000;
/// Bytes per restore-stub slot: `bsr`, tag, usage count.
pub const STUB_SLOT_BYTES: u32 = 12;

/// Statistics accumulated over the whole pipeline.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SquashStats {
    /// The footprint breakdown of the emitted image.
    pub footprint: Footprint,
    /// The baseline: the same program linked conventionally, in bytes.
    pub baseline_bytes: u32,
    /// Number of compressed regions.
    pub regions: usize,
    /// Number of entry stubs.
    pub entry_stubs: usize,
    /// Compile-time restore stubs emitted (zero under the runtime scheme).
    pub static_restore_stubs: usize,
    /// Number of compressed basic blocks.
    pub compressed_blocks: usize,
    /// Instruction words inside compressed regions (pre-compression).
    pub compressed_input_words: u32,
    /// Total program words (set by the driver from the cold analysis).
    pub total_words: u32,
    /// Cold words (set by the driver).
    pub cold_words: u32,
    /// Buffer-safe function count and fraction.
    pub buffer_safe_funcs: usize,
    /// Fraction of functions that are buffer-safe.
    pub buffer_safe_fraction: f64,
    /// Calls inside compressed regions left unexpanded thanks to
    /// buffer-safety.
    pub safe_calls_in_regions: usize,
    /// Total calls inside compressed regions.
    pub calls_in_regions: usize,
    /// Jump-table transformation stats.
    pub jump_tables: JumpTableStats,
    /// Compressed payload bits (excluding tables).
    pub payload_bits: u64,
}

impl SquashStats {
    /// Code-size reduction relative to the conventionally linked baseline.
    pub fn reduction(&self) -> f64 {
        self.footprint.reduction_vs(self.baseline_bytes)
    }
}

/// A fully emitted squashed program.
#[derive(Debug, Clone)]
pub struct Squashed {
    /// Loadable segments `(base, bytes)`.
    pub segments: Vec<(u32, Vec<u8>)>,
    /// Entry point.
    pub entry: u32,
    /// Everything the runtime decompressor service needs.
    pub runtime: RuntimeConfig,
    /// Pipeline statistics.
    pub stats: SquashStats,
    /// How the image was tuned (`None` for a plain static-profile squash;
    /// filled in by [`crate::retune`]). Serialized as the optional
    /// `provenance` section of a SQSH0003 image.
    pub provenance: Option<crate::image_file::Provenance>,
}

impl Squashed {
    /// Minimum VM memory able to hold the image plus `headroom` stack/heap.
    pub fn min_mem_size(&self, headroom: usize) -> usize {
        let end = self
            .segments
            .iter()
            .map(|(b, v)| *b as usize + v.len())
            .max()
            .unwrap_or(0);
        (end + headroom).next_power_of_two()
    }
}

/// Where a block's code lives in the squashed program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Placement {
    /// Never-compressed, at this absolute address.
    Fixed(u32),
    /// In region `r`, at this byte offset within the buffer image.
    Compressed { region: usize, offset: u32 },
}

/// Whether a call from compressed code to `callee` must be expanded into
/// the restore sequence (not buffer-safe, or the optimization is off).
fn expand_call(plan: &RegionPlan, options: &SquashOptions, callee: FuncId) -> bool {
    !(options.buffer_safe_opt && plan.safety.is_safe(callee))
}

/// Every address in the squashed image, fixed before emission: where each
/// block lives, the bases of every text-area section, and the data-segment
/// addresses. A pure function of the [`RegionPlan`] — computing it never
/// emits a byte, so sizing and emission cannot drift apart.
#[derive(Debug, Clone)]
pub(crate) struct Geometry {
    region_of: HashMap<(FuncId, usize), usize>,
    stub_of: HashMap<(FuncId, usize), usize>,
    /// Never-compressed blocks per function, in emission order.
    nc_blocks: Vec<Vec<usize>>,
    nc_addr: HashMap<(FuncId, usize), u32>,
    nc_end: u32,
    stubs_base: u32,
    stubs_bytes: u32,
    rstub_base: u32,
    rstub_count: u32,
    rstub_bytes: u32,
    decomp_base: u32,
    decomp_bytes: u32,
    offset_table_addr: u32,
    offset_table_bytes: u32,
    stub_area_base: u32,
    stub_area_bytes: u32,
    stub_slots: usize,
    buffer_base: u32,
    buffer_bytes: u32,
    cache_slots: usize,
    cache_bytes: u32,
    blob_base: u32,
    /// Exact emitted size of each region's buffer image, in words.
    image_words: Vec<u32>,
    /// Byte offset of each compressed block within its region's image.
    buf_off: HashMap<(FuncId, usize), u32>,
    data_addrs: Vec<u32>,
    data_end: u32,
    compile_time: bool,
}

impl Geometry {
    fn placement(&self, f: FuncId, b: usize) -> Placement {
        match self.region_of.get(&(f, b)) {
            Some(&ri) => Placement::Compressed {
                region: ri,
                offset: self.buf_off[&(f, b)],
            },
            None => Placement::Fixed(self.nc_addr[&(f, b)]),
        }
    }

    /// The canonical *address* of a block: its own address when fixed, its
    /// entry stub when compressed.
    fn block_addr(&self, f: FuncId, b: usize) -> Result<u32, SquashError> {
        match self.placement(f, b) {
            Placement::Fixed(a) => Ok(a),
            Placement::Compressed { .. } => match self.stub_of.get(&(f, b)) {
                Some(&k) => Ok(self.stubs_base + 8 * k as u32),
                None => err(format!(
                    "block {f}:{b} is compressed, externally referenced, but has no stub"
                )),
            },
        }
    }

    fn func_addr(&self, g: FuncId) -> Result<u32, SquashError> {
        self.block_addr(g, 0)
    }

    fn sym_addr(&self, s: SymRef) -> Result<u32, SquashError> {
        match s {
            SymRef::Func(g) => self.func_addr(g),
            SymRef::Data(d) => Ok(self.data_addrs[d]),
            SymRef::Block(f, b) => self.block_addr(f, b),
        }
    }
}

/// Computes the full address [`Geometry`] for a plan (the sizing pass).
///
/// # Errors
///
/// Fails on capacity limits: too many regions for 16-bit tags, a runtime
/// buffer exceeding 16-bit offsets, or a bad cache-slot count.
pub(crate) fn geometry(
    program: &Program,
    plan: &RegionPlan,
    options: &SquashOptions,
) -> Result<Geometry, SquashError> {
    let regions_list = &plan.regions;
    if regions_list.len() > u16::MAX as usize {
        return err("too many regions for 16-bit tags");
    }
    let region_of: HashMap<(FuncId, usize), usize> = regions_list
        .iter()
        .enumerate()
        .flat_map(|(ri, r)| r.blocks.iter().map(move |&m| (m, ri)))
        .collect();
    let stub_of: HashMap<(FuncId, usize), usize> = plan
        .entry_stubs
        .iter()
        .enumerate()
        .map(|(k, &(_, f, b))| ((f, b), k))
        .collect();
    let compile_time = options.restore_stubs == RestoreStubMode::CompileTime;

    // Under the compile-time scheme (§2.2's rejected alternative), every
    // expanded call site in compressed code gets a permanent 3-word stub.
    let mut rstub_count = 0u32;
    if compile_time {
        for r in regions_list {
            for &(f, b) in &r.blocks {
                for pi in &program.func(f).blocks[b].insts {
                    if let Some(callee) = pi.call {
                        let plain = matches!(pi.inst, Inst::Bra { ra: Reg::ZERO, .. });
                        if !plain && expand_call(plan, options, callee) {
                            rstub_count += 1;
                        }
                    } else if matches!(pi.inst, Inst::Jmp { .. }) {
                        rstub_count += 1;
                    }
                }
            }
        }
    }

    // Never-compressed blocks per function, in order.
    let nc_blocks: Vec<Vec<usize>> = program
        .funcs
        .iter()
        .enumerate()
        .map(|(fi, f)| {
            (0..f.blocks.len())
                .filter(|&b| !region_of.contains_key(&(FuncId(fi), b)))
                .collect()
        })
        .collect();

    // Block addresses for never-compressed code.
    let mut nc_addr: HashMap<(FuncId, usize), u32> = HashMap::new();
    let mut cursor = TEXT_BASE;
    for (fi, list) in nc_blocks.iter().enumerate() {
        let fid = FuncId(fi);
        for (pos, &bi) in list.iter().enumerate() {
            nc_addr.insert((fid, bi), cursor);
            let next_emitted = list.get(pos + 1).copied();
            cursor += 4 * nc_block_words(program, fid, bi, next_emitted);
        }
    }
    let nc_end = cursor;
    let stubs_base = nc_end;
    let stubs_bytes = 8 * plan.entry_stubs.len() as u32;
    let rstub_base = stubs_base + stubs_bytes;
    let rstub_bytes = 12 * rstub_count;
    let decomp_base = rstub_base + rstub_bytes;
    let decomp_bytes = options.decompressor_bytes.max(128) & !3;
    let offset_table_addr = decomp_base + decomp_bytes;
    let offset_table_bytes = 4 * regions_list.len() as u32;
    let stub_area_base = offset_table_addr + offset_table_bytes;
    let stub_slots = if compile_time { 0 } else { options.stub_slots };
    let stub_area_bytes = STUB_SLOT_BYTES * stub_slots as u32;

    // Region image sizes (exact; mirrors build_images).
    let expand = |callee: FuncId| expand_call(plan, options, callee);
    let mut image_words: Vec<u32> = Vec::with_capacity(regions_list.len());
    let mut buf_off: HashMap<(FuncId, usize), u32> = HashMap::new();
    for r in regions_list {
        let mut off = 0u32;
        for (i, &(f, b)) in r.blocks.iter().enumerate() {
            buf_off.insert((f, b), off * 4);
            off += region_block_words(program, r, i, &expand, compile_time);
        }
        image_words.push(off);
    }
    let buffer_words = image_words.iter().copied().max().unwrap_or(0);
    let buffer_base = stub_area_base + stub_area_bytes;
    let buffer_bytes = 4 * buffer_words;
    if buffer_bytes > u16::MAX as u32 - 4 {
        return err(format!("runtime buffer of {buffer_bytes} bytes exceeds 16-bit offsets"));
    }
    // The region cache: `cache_slots` identical K-byte buffer slots, laid
    // out contiguously. Slot 0 starts at `buffer_base`; every slot is
    // charged to the footprint.
    let cache_slots = options.cache_slots;
    if cache_slots == 0 {
        return err("cache_slots must be at least 1");
    }
    if cache_slots > 1 << 10 {
        return err(format!("implausible cache_slots {cache_slots}"));
    }
    let cache_bytes = buffer_bytes * cache_slots as u32;
    let blob_base = buffer_base + cache_bytes;

    // Data addresses at the fixed base.
    let mut data_addrs = Vec::with_capacity(program.data.len());
    let mut dcursor = DATA_BASE;
    for d in &program.data {
        dcursor = (dcursor + d.align.max(1) - 1) & !(d.align.max(1) - 1);
        data_addrs.push(dcursor);
        dcursor += d.size();
    }

    Ok(Geometry {
        region_of,
        stub_of,
        nc_blocks,
        nc_addr,
        nc_end,
        stubs_base,
        stubs_bytes,
        rstub_base,
        rstub_count,
        rstub_bytes,
        decomp_base,
        decomp_bytes,
        offset_table_addr,
        offset_table_bytes,
        stub_area_base,
        stub_area_bytes,
        stub_slots,
        buffer_base,
        buffer_bytes,
        cache_slots,
        cache_bytes,
        blob_base,
        image_words,
        buf_off,
        data_addrs,
        data_end: dcursor,
        compile_time,
    })
}

fn lerr(e: squash_cfg::link::LinkError) -> SquashError {
    SquashError::msg(e.message)
}

/// Emits the never-compressed code words at the addresses fixed by
/// [`geometry`].
pub(crate) fn emit_nc_text(program: &Program, geo: &Geometry) -> Result<Vec<u32>, SquashError> {
    let mut text: Vec<u32> = Vec::with_capacity(((geo.nc_end - TEXT_BASE) / 4) as usize);
    for (fi, list) in geo.nc_blocks.iter().enumerate() {
        let fid = FuncId(fi);
        for (pos, &bi) in list.iter().enumerate() {
            let next_emitted = list.get(pos + 1).copied();
            let mut pc = geo.nc_addr[&(fid, bi)];
            let block = &program.func(fid).blocks[bi];
            for pi in &block.insts {
                let word = if let Some(callee) = pi.call {
                    let Inst::Bra { op, ra, .. } = pi.inst else {
                        return err("call template is not a bsr");
                    };
                    Inst::Bra {
                        op,
                        ra,
                        disp: branch_disp(pc, geo.func_addr(callee)?).map_err(lerr)?,
                    }
                    .encode()
                } else {
                    encode_reloc(pi, &|s| geo.sym_addr(s))?
                };
                text.push(word);
                pc += 4;
            }
            // Terminator.
            let target_addr = |t: &JumpTarget| -> Result<u32, SquashError> {
                match t {
                    JumpTarget::Block(b) => geo.block_addr(fid, *b),
                    JumpTarget::Func(g) => geo.func_addr(*g),
                }
            };
            let fall_adjacent = |t: usize| Some(t) == next_emitted;
            match &block.term {
                Term::Fall { next } => {
                    if !fall_adjacent(*next) {
                        text.push(
                            Inst::Bra {
                                op: BraOp::Br,
                                ra: Reg::ZERO,
                                disp: branch_disp(pc, geo.block_addr(fid, *next)?)
                                    .map_err(lerr)?,
                            }
                            .encode(),
                        );
                    }
                }
                Term::Jump { target } => text.push(
                    Inst::Bra {
                        op: BraOp::Br,
                        ra: Reg::ZERO,
                        disp: branch_disp(pc, target_addr(target)?).map_err(lerr)?,
                    }
                    .encode(),
                ),
                Term::Cond { op, ra, target, fall } => {
                    text.push(
                        Inst::Bra {
                            op: *op,
                            ra: *ra,
                            disp: branch_disp(pc, target_addr(target)?).map_err(lerr)?,
                        }
                        .encode(),
                    );
                    pc += 4;
                    if !fall_adjacent(*fall) {
                        text.push(
                            Inst::Bra {
                                op: BraOp::Br,
                                ra: Reg::ZERO,
                                disp: branch_disp(pc, geo.block_addr(fid, *fall)?)
                                    .map_err(lerr)?,
                            }
                            .encode(),
                        );
                    }
                }
                Term::IndirectJump { rb, .. } | Term::Ret { rb } => text.push(
                    Inst::Jmp {
                        ra: Reg::ZERO,
                        rb: *rb,
                        hint: 0,
                    }
                    .encode(),
                ),
                Term::Exit => text.push(Inst::Pal { func: PalOp::Exit }.encode()),
                Term::Halt => text.push(Inst::Pal { func: PalOp::Halt }.encode()),
            }
        }
    }
    debug_assert_eq!(TEXT_BASE + 4 * text.len() as u32, geo.nc_end);
    Ok(text)
}

/// The exact region buffer images, plus the compile-time restore stubs and
/// call accounting produced while building them.
#[derive(Debug, Clone)]
pub(crate) struct RegionImages {
    /// One decoded-instruction image per region, with all displacements
    /// resolved against final addresses.
    pub images: Vec<Vec<Inst>>,
    /// Compile-time restore-stub words (empty under the runtime scheme).
    pub rstub_words: Vec<u32>,
    /// Calls inside regions left unexpanded thanks to buffer-safety.
    pub safe_calls: usize,
    /// Total calls inside regions.
    pub total_calls: usize,
}

impl RegionImages {
    /// Total image size in bytes (what the encode stage consumes).
    pub(crate) fn total_bytes(&self) -> u64 {
        self.images.iter().map(|v| v.len() as u64 * 4).sum()
    }
}

/// Builds every region's buffer image — the exact instructions its
/// decompression must produce.
pub(crate) fn build_images(
    program: &Program,
    plan: &RegionPlan,
    geo: &Geometry,
    options: &SquashOptions,
) -> Result<RegionImages, SquashError> {
    let regions_list = &plan.regions;
    let mut images: Vec<Vec<Inst>> = Vec::with_capacity(regions_list.len());
    let mut safe_calls = 0usize;
    let mut total_calls = 0usize;
    let mut rstub_words: Vec<u32> = Vec::with_capacity(3 * geo.rstub_count as usize);
    let mut next_rstub = 0u32;
    for (ri, r) in regions_list.iter().enumerate() {
        let mut image: Vec<Inst> = Vec::with_capacity(geo.image_words[ri] as usize);
        for (i, &(f, b)) in r.blocks.iter().enumerate() {
            let block = &program.func(f).blocks[b];
            debug_assert_eq!(geo.buf_off[&(f, b)], 4 * image.len() as u32);
            let pc_at = |img: &Vec<Inst>| geo.buffer_base + 4 * img.len() as u32;
            for pi in &block.insts {
                if let Some(callee) = pi.call {
                    let Inst::Bra { op, ra, .. } = pi.inst else {
                        return err("call template is not a bsr");
                    };
                    total_calls += 1;
                    if ra == Reg::ZERO {
                        // A link into the zero register is just a branch.
                        let disp = branch_disp(pc_at(&image), geo.func_addr(callee)?)
                            .map_err(lerr)?;
                        image.push(Inst::Bra { op, ra, disp });
                    } else if expand_call(plan, options, callee) {
                        if geo.compile_time {
                            // One branch in the buffer; the permanent stub
                            // performs the call and the restore.
                            let stub_addr = geo.rstub_base + 12 * next_rstub;
                            next_rstub += 1;
                            let ret_off = 4 * image.len() as u32 + 4;
                            let disp =
                                branch_disp(pc_at(&image), stub_addr).map_err(lerr)?;
                            image.push(Inst::Bra { op: BraOp::Br, ra: Reg::ZERO, disp });
                            let w0 = Inst::Bra {
                                op: BraOp::Bsr,
                                ra,
                                disp: branch_disp(stub_addr, geo.func_addr(callee)?)
                                    .map_err(lerr)?,
                            };
                            push_rstub(
                                &mut rstub_words,
                                w0,
                                stub_addr,
                                geo.decomp_base,
                                ri,
                                ret_off,
                            )
                            .map_err(lerr)?;
                        } else {
                            let disp = branch_disp(
                                pc_at(&image),
                                geo.decomp_base + 4 * ra.number() as u32,
                            )
                            .map_err(lerr)?;
                            image.push(Inst::Bra { op: BraOp::Bsr, ra, disp });
                            let disp = branch_disp(pc_at(&image), geo.func_addr(callee)?)
                                .map_err(lerr)?;
                            image.push(Inst::Bra { op: BraOp::Br, ra: Reg::ZERO, disp });
                        }
                    } else {
                        safe_calls += 1;
                        let disp = branch_disp(pc_at(&image), geo.func_addr(callee)?)
                            .map_err(lerr)?;
                        image.push(Inst::Bra { op, ra, disp });
                    }
                } else if let Inst::Jmp { ra, rb, hint } = pi.inst {
                    // Indirect call from compressed code: always expanded
                    // (the callee is unknown, hence never buffer-safe).
                    total_calls += 1;
                    if geo.compile_time {
                        let stub_addr = geo.rstub_base + 12 * next_rstub;
                        next_rstub += 1;
                        let ret_off = 4 * image.len() as u32 + 4;
                        let disp = branch_disp(pc_at(&image), stub_addr).map_err(lerr)?;
                        image.push(Inst::Bra { op: BraOp::Br, ra: Reg::ZERO, disp });
                        push_rstub(
                            &mut rstub_words,
                            Inst::Jmp { ra, rb, hint },
                            stub_addr,
                            geo.decomp_base,
                            ri,
                            ret_off,
                        )
                        .map_err(lerr)?;
                    } else {
                        let disp = branch_disp(
                            pc_at(&image),
                            geo.decomp_base + 4 * ra.number() as u32,
                        )
                        .map_err(lerr)?;
                        image.push(Inst::Bra { op: BraOp::Bsr, ra, disp });
                        image.push(Inst::Jmp { ra: Reg::ZERO, rb, hint });
                    }
                } else {
                    let word = encode_reloc(pi, &|s| geo.sym_addr(s))?;
                    image.push(Inst::decode(word).map_err(|e| {
                        SquashError::msg(format!("re-decode of relocated instruction failed: {e}"))
                    })?);
                }
            }
            // Terminator, resolving in-region targets buffer-relatively.
            let resolve = |f2: FuncId, b2: usize| -> Result<u32, SquashError> {
                if r.contains(f2, b2) {
                    Ok(geo.buffer_base + geo.buf_off[&(f2, b2)])
                } else {
                    geo.block_addr(f2, b2)
                }
            };
            let target_addr = |t: &JumpTarget| -> Result<u32, SquashError> {
                match t {
                    JumpTarget::Block(b2) => resolve(f, *b2),
                    JumpTarget::Func(g) => {
                        if r.contains(*g, 0) {
                            Ok(geo.buffer_base + geo.buf_off[&(*g, 0)])
                        } else {
                            geo.func_addr(*g)
                        }
                    }
                }
            };
            let next_in_image = r.blocks.get(i + 1).copied();
            let fall_adjacent = |t: usize| next_in_image == Some((f, t));
            match &block.term {
                Term::Fall { next } => {
                    if !fall_adjacent(*next) {
                        let disp =
                            branch_disp(pc_at(&image), resolve(f, *next)?).map_err(lerr)?;
                        image.push(Inst::Bra { op: BraOp::Br, ra: Reg::ZERO, disp });
                    }
                }
                Term::Jump { target } => {
                    let disp =
                        branch_disp(pc_at(&image), target_addr(target)?).map_err(lerr)?;
                    image.push(Inst::Bra { op: BraOp::Br, ra: Reg::ZERO, disp });
                }
                Term::Cond { op, ra, target, fall } => {
                    let disp =
                        branch_disp(pc_at(&image), target_addr(target)?).map_err(lerr)?;
                    image.push(Inst::Bra { op: *op, ra: *ra, disp });
                    if !fall_adjacent(*fall) {
                        let disp =
                            branch_disp(pc_at(&image), resolve(f, *fall)?).map_err(lerr)?;
                        image.push(Inst::Bra { op: BraOp::Br, ra: Reg::ZERO, disp });
                    }
                }
                Term::IndirectJump { rb, .. } | Term::Ret { rb } => {
                    image.push(Inst::Jmp { ra: Reg::ZERO, rb: *rb, hint: 0 });
                }
                Term::Exit => image.push(Inst::Pal { func: PalOp::Exit }),
                Term::Halt => image.push(Inst::Pal { func: PalOp::Halt }),
            }
        }
        if image.len() as u32 != geo.image_words[ri] {
            return err(format!(
                "region {ri}: image is {} words, sized {}",
                image.len(),
                geo.image_words[ri]
            ));
        }
        images.push(image);
    }
    Ok(RegionImages {
        images,
        rstub_words,
        safe_calls,
        total_calls,
    })
}

/// Assembles the final [`Squashed`] artifact: segments, entry stubs, data,
/// the conventionally linked baseline, statistics and the runtime
/// configuration.
#[allow(clippy::too_many_arguments)]
pub(crate) fn assemble(
    program: &Program,
    plan: &RegionPlan,
    geo: &Geometry,
    text: &[u32],
    images: &RegionImages,
    trained: TrainedModel,
    encoded: EncodedRegions,
    options: &SquashOptions,
) -> Result<Squashed, SquashError> {
    let regions_list = &plan.regions;
    let EncodedRegions {
        blob,
        bit_offsets,
        payload_bits,
        region_crcs,
    } = encoded;
    if geo.blob_base + blob.len() as u32 > DATA_BASE {
        return err("image overflows the fixed data base; enlarge DATA_BASE");
    }
    for &off in &bit_offsets {
        if off > u32::MAX as u64 {
            return err("compressed blob exceeds 32-bit bit offsets");
        }
    }

    // Entry stubs.
    let mut stub_words: Vec<u32> = Vec::with_capacity(2 * plan.entry_stubs.len());
    for (k, &(ri, f, b)) in plan.entry_stubs.iter().enumerate() {
        let stub_addr = geo.stubs_base + 8 * k as u32;
        let disp = branch_disp(stub_addr, geo.decomp_base + 4 * Reg::AT.number() as u32)
            .map_err(lerr)?;
        stub_words.push(Inst::Bra { op: BraOp::Bsr, ra: Reg::AT, disp }.encode());
        let off = geo.buf_off[&(f, b)];
        stub_words.push(((ri as u32) << 16) | off);
    }

    // Assemble the contiguous text segment: nc code, stubs, decomp area,
    // offset table, (zeroed) stub area and buffer, blob.
    let mut seg = Vec::with_capacity((geo.blob_base - TEXT_BASE) as usize + blob.len());
    for w in text {
        seg.extend_from_slice(&w.to_le_bytes());
    }
    for w in &stub_words {
        seg.extend_from_slice(&w.to_le_bytes());
    }
    debug_assert_eq!(images.rstub_words.len() as u32, 3 * geo.rstub_count);
    for w in &images.rstub_words {
        seg.extend_from_slice(&w.to_le_bytes());
    }
    for _ in 0..geo.decomp_bytes / 4 {
        seg.extend_from_slice(&Inst::Illegal.encode().to_le_bytes());
    }
    for &off in &bit_offsets {
        seg.extend_from_slice(&(off as u32).to_le_bytes());
    }
    seg.resize(seg.len() + geo.stub_area_bytes as usize, 0);
    seg.resize(seg.len() + geo.cache_bytes as usize, 0);
    seg.extend_from_slice(&blob);
    debug_assert_eq!(
        TEXT_BASE as usize + seg.len(),
        geo.blob_base as usize + blob.len()
    );

    // Data segment.
    let mut data = vec![0u8; (geo.data_end - DATA_BASE) as usize];
    for (di, d) in program.data.iter().enumerate() {
        let mut off = (geo.data_addrs[di] - DATA_BASE) as usize;
        for item in &d.items {
            match item {
                DataItem::Quad(v) => data[off..off + 8].copy_from_slice(&v.to_le_bytes()),
                DataItem::Word(v) => data[off..off + 4].copy_from_slice(&v.to_le_bytes()),
                DataItem::Byte(v) => data[off] = *v,
                DataItem::Space(_) => {}
                DataItem::Addr(t) => {
                    let addr = match t {
                        AddrTarget::Func(g) => geo.func_addr(*g)?,
                        AddrTarget::Block(f, b) => geo.block_addr(*f, *b)?,
                        AddrTarget::Data(d2) => geo.data_addrs[*d2],
                    };
                    data[off..off + 4].copy_from_slice(&addr.to_le_bytes());
                }
            }
            off += item.size() as usize;
        }
    }

    // Baseline: the same program linked conventionally.
    let baseline = squash_cfg::link::link(program, &LinkOptions::default()).map_err(lerr)?;
    let baseline_bytes = baseline.text_words() as u32 * 4;

    let model = trained.model;
    let has_regions = !regions_list.is_empty();
    let footprint = Footprint {
        never_compressed: geo.nc_end - TEXT_BASE,
        entry_stubs: geo.stubs_bytes,
        static_stubs: geo.rstub_bytes,
        decompressor: if has_regions { geo.decomp_bytes } else { 0 },
        model_tables: if has_regions { model.table_bytes() as u32 } else { 0 },
        offset_table: geo.offset_table_bytes,
        compressed: blob.len() as u32,
        stub_area: if has_regions { geo.stub_area_bytes } else { 0 },
        buffer: geo.cache_bytes,
    };
    let stats = SquashStats {
        footprint,
        baseline_bytes,
        regions: regions_list.len(),
        entry_stubs: plan.entry_stubs.len(),
        static_restore_stubs: geo.rstub_count as usize,
        compressed_blocks: plan.compressed_blocks(),
        compressed_input_words: regions_list
            .iter()
            .map(|r| regions::estimate_image_words(program, &r.blocks))
            .sum(),
        buffer_safe_funcs: plan.safety.count(),
        buffer_safe_fraction: plan.safety.fraction(),
        safe_calls_in_regions: images.safe_calls,
        calls_in_regions: images.total_calls,
        payload_bits,
        ..SquashStats::default()
    };

    let runtime = RuntimeConfig {
        decomp_base: geo.decomp_base,
        decomp_bytes: geo.decomp_bytes,
        buffer_base: geo.buffer_base,
        buffer_bytes: geo.buffer_bytes,
        cache_slots: geo.cache_slots,
        stub_base: geo.stub_area_base,
        stub_slots: geo.stub_slots,
        offset_table_addr: geo.offset_table_addr,
        regions: regions_list.len(),
        model,
        blob,
        bit_offsets,
        region_crcs,
        cost: options.cost,
        skip_if_current: options.skip_if_current,
    };

    Ok(Squashed {
        segments: vec![(TEXT_BASE, seg), (DATA_BASE, data)],
        entry: geo.func_addr(program.entry)?,
        runtime,
        stats,
        provenance: None,
    })
}

/// Emitted size in words of a never-compressed block, given which block (if
/// any) is emitted immediately after it.
fn nc_block_words(
    program: &Program,
    f: FuncId,
    b: usize,
    next_emitted: Option<usize>,
) -> u32 {
    let block = &program.func(f).blocks[b];
    let adjacent = |t: usize| next_emitted == Some(t);
    let term = match &block.term {
        Term::Fall { next } => u32::from(!adjacent(*next)),
        Term::Cond { fall, .. } => 1 + u32::from(!adjacent(*fall)),
        Term::Jump { .. }
        | Term::IndirectJump { .. }
        | Term::Ret { .. }
        | Term::Exit
        | Term::Halt => 1,
    };
    block.insts.len() as u32 + term
}

/// Emitted size in words of region member `i` inside the buffer image.
/// Under the runtime stub scheme expanded calls occupy two words; under the
/// compile-time scheme one (a branch to the permanent stub).
fn region_block_words(
    program: &Program,
    r: &Region,
    i: usize,
    expand_call: &impl Fn(FuncId) -> bool,
    compile_time: bool,
) -> u32 {
    let (f, b) = r.blocks[i];
    let block = &program.func(f).blocks[b];
    let mut words = block.insts.len() as u32;
    let extra = u32::from(!compile_time);
    for pi in &block.insts {
        if let Some(callee) = pi.call {
            let is_plain_branch = matches!(pi.inst, Inst::Bra { ra: Reg::ZERO, .. });
            if !is_plain_branch && expand_call(callee) {
                words += extra;
            }
        } else if matches!(pi.inst, Inst::Jmp { .. }) {
            words += extra; // indirect call expansion
        }
    }
    let next = r.blocks.get(i + 1).copied();
    let adjacent = |t: usize| next == Some((f, t));
    words += match &block.term {
        Term::Fall { next } => u32::from(!adjacent(*next)),
        Term::Cond { fall, .. } => 1 + u32::from(!adjacent(*fall)),
        Term::Jump { .. }
        | Term::IndirectJump { .. }
        | Term::Ret { .. }
        | Term::Exit
        | Term::Halt => 1,
    };
    words
}

/// Appends one compile-time restore stub: the transplanted call, the
/// decompressor invocation, and the tag word.
fn push_rstub(
    rstub_words: &mut Vec<u32>,
    call_word: Inst,
    stub_addr: u32,
    decomp_base: u32,
    region: usize,
    ret_off: u32,
) -> Result<(), squash_cfg::link::LinkError> {
    rstub_words.push(call_word.encode());
    let bsr = Inst::Bra {
        op: BraOp::Bsr,
        ra: Reg::AT,
        disp: branch_disp(stub_addr + 4, decomp_base + 4 * Reg::AT.number() as u32)?,
    };
    rstub_words.push(bsr.encode());
    rstub_words.push(((region as u32) << 16) | (ret_off & 0xFFFF));
    Ok(())
}

fn encode_reloc(
    pi: &squash_cfg::PInst,
    sym_addr: &impl Fn(SymRef) -> Result<u32, SquashError>,
) -> Result<u32, SquashError> {
    match pi.reloc {
        None => Ok(pi.inst.encode()),
        Some(BlockReloc::Hi(s)) => {
            let (hi, _) = hi_lo_split(sym_addr(s)?);
            patch_disp(pi.inst, hi)
        }
        Some(BlockReloc::Lo(s)) => {
            let (_, lo) = hi_lo_split(sym_addr(s)?);
            patch_disp(pi.inst, lo)
        }
    }
}

fn patch_disp(inst: Inst, value: i16) -> Result<u32, SquashError> {
    match inst {
        Inst::Mem { op, ra, rb, disp } => {
            let total = disp as i32 + value as i32;
            let disp = i16::try_from(total).map_err(|_| {
                SquashError::msg(format!("relocated displacement {total} overflows"))
            })?;
            Ok(Inst::Mem { op, ra, rb, disp }.encode())
        }
        other => err(format!("address relocation on non-memory instruction {other:?}")),
    }
}

// Quiet the unused-import warning for MemOp (used in patch_disp match arms
// via Inst::Mem patterns).
#[allow(unused)]
fn _mem_op_witness(m: MemOp) -> u8 {
    m.opcode()
}
