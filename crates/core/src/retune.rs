//! Feedback-directed recompression (`squashc --retune`).
//!
//! The static pipeline picks the cold set from a training profile; this
//! module closes the loop with evidence from actual runs. Given one or more
//! telemetry documents from `squashrun --metrics` (merged by
//! [`crate::telemetry::Telemetry::merge`]), it re-partitions regions that
//! turned out hot in practice out of the compressed set, re-tunes θ and the
//! buffer bound K per program, and emits the image predicted cheapest on
//! the measured workload. The winning image carries a
//! [`crate::image_file::Provenance`] section recording which profile
//! produced it (shown by `squashrun --report`).
//!
//! # The candidate ladder
//!
//! Candidate 0 is the *static identity*: the original (θ, K), no demotion —
//! the retuner can never do worse than not retuning. The rest of the ladder
//! crosses {θ/2, θ, 2θ} with {K/2, K, 2K} (clamped, deduplicated), each
//! with every region the telemetry saw entered demoted to hot. Every
//! candidate is fully emitted (plan → layout → train → encode → assemble)
//! and scored by a deterministic cycle estimator; the winner is the
//! candidate with the lowest predicted cycle count, ties broken by smaller
//! footprint, then lower ladder index.
//!
//! # The estimator
//!
//! Measured cycles split into `base = run.cycles − runtime.cycles_charged`
//! (the program's own work, invariant under re-tuning up to restore-stub
//! overhead) and decompressor charges, which the estimator re-predicts per
//! candidate. Each baseline region's measured traffic `T(r) =
//! decompressions + hits` is spread evenly over its member blocks; a
//! candidate region's predicted trap count is the sum of its members' heat.
//! Blocks the baseline never compressed (admitted by a larger θ′) get their
//! full profile frequency as heat — deliberately pessimistic, so a larger
//! θ′ must pay for every execution of newly admitted code and can never win
//! on wishful thinking. Per-trap cost follows the [`crate::CostModel`]:
//! `per_call + per_bit·bits(r′) + per_inst·insts(r′)` plus
//! `per_check_byte` over the region's blob span when the image carries
//! integrity metadata. Measured `CreateStub` cycles ride along with the
//! blocks that incurred them.
//!
//! The demote-everything candidate at the original (θ, K) always has a
//! predicted cost of exactly `base` — all entered regions are gone, the
//! remaining ones have zero measured heat — so whenever the measured input
//! entered any region, some demoting candidate strictly beats the static
//! identity and the retuned image re-runs at least as fast on that input.
//!
//! All estimator state lives in `BTreeMap`s keyed by `(func, block)` and
//! candidates are emitted in ladder order: the same telemetry in produces
//! byte-identical images out.

use std::collections::BTreeMap;

use squash_cfg::link::block_emitted_words;
use squash_cfg::Program;

use crate::image_file::{Provenance, ProvenanceKind};
use crate::telemetry::Telemetry;
use crate::{
    cold, integrity, jumptables, layout, regions, stages, BlockProfile, SquashError,
    SquashOptions, Squasher,
};

/// One rung of the candidate ladder, with its score.
#[derive(Debug, Clone, PartialEq)]
pub struct Candidate {
    /// The cold threshold this candidate was planned at.
    pub theta: f64,
    /// The buffer bound K this candidate was planned at.
    pub buffer_limit: u32,
    /// Whether regions the telemetry saw entered were demoted to hot.
    pub demoted: bool,
    /// The estimator's predicted cycle count on the measured workload.
    pub predicted_cycles: u64,
    /// Total image footprint in bytes.
    pub footprint: u32,
    /// Compressed regions in the candidate image.
    pub regions: usize,
}

/// What the retuner decided and why — enough for a CLI report.
#[derive(Debug, Clone, PartialEq)]
pub struct RetuneReport {
    /// Every ladder rung, in construction order (index 0 = static identity).
    pub candidates: Vec<Candidate>,
    /// Index of the winning candidate.
    pub winner: usize,
    /// Total measured cycles in the telemetry's run section.
    pub measured_cycles: u64,
    /// Measured cycles not charged to the decompressor (the floor every
    /// candidate's prediction sits on).
    pub base_cycles: u64,
    /// Baseline regions the telemetry saw entered (demotion candidates drop
    /// all of them).
    pub hot_regions: usize,
}

/// A retuned image plus the decision report.
#[derive(Debug, Clone)]
pub struct Retuned {
    /// The winning image, provenance section attached.
    pub squashed: layout::Squashed,
    /// The ladder and scores behind the choice.
    pub report: RetuneReport,
}

/// Per-block measured heat, spread from per-region telemetry rows.
struct Heat {
    /// Estimated traps per run attributable to the block.
    traps: BTreeMap<(usize, usize), f64>,
    /// Measured `CreateStub` cycles attributable to the block.
    stub_cycles: BTreeMap<(usize, usize), f64>,
}

/// Re-tunes a program against measured telemetry and returns the winning
/// image (provenance attached) plus the decision report.
///
/// `program`, `profile`, and `options` must be exactly what the static
/// image was squashed from — the baseline plan is re-derived from them and
/// the telemetry's region indices are validated against it.
///
/// # Errors
///
/// Rejects a non-finite θ, a profile whose shape does not match the
/// program, telemetry without `run`/`attribution` sections (run
/// `squashrun --metrics-json` to produce them; a missing `runtime` section
/// just means zero decompressor activity and is fine), telemetry
/// attributing a region the baseline plan does not have (stale or
/// mismatched profile), and any layout/compression failure while emitting
/// a candidate.
pub fn retune(
    program: &Program,
    profile: &BlockProfile,
    options: &SquashOptions,
    telemetry: &Telemetry,
) -> Result<Retuned, SquashError> {
    if !options.theta.is_finite() {
        return Err(SquashError::msg(format!(
            "cold threshold θ must be finite, got {}",
            options.theta
        )));
    }
    if profile.freq.len() != program.funcs.len()
        || profile
            .freq
            .iter()
            .zip(&program.funcs)
            .any(|(f, pf)| f.len() != pf.blocks.len())
    {
        return Err(SquashError::msg("profile shape does not match program"));
    }
    let run = telemetry.run.as_ref().ok_or_else(|| {
        SquashError::msg("telemetry has no run section — nothing was measured")
    })?;
    let attribution = telemetry.attribution.as_ref().ok_or_else(|| {
        SquashError::msg(
            "telemetry has no attribution section — re-run `squashrun --metrics` \
             to collect per-region rows",
        )
    })?;

    // The provenance records the CRC of the profile as the user supplied it,
    // before the jump-table transform reshapes it.
    let profile_crc = integrity::crc32c(&profile.serialize());

    // One jump-table transform, shared by the baseline and every candidate.
    let (tprogram, tprofile, table_stats) =
        jumptables::apply(program, profile, options.jump_tables);
    let baseline_cold = cold::identify(&tprogram, &tprofile, options.theta)?;
    let baseline_plan = stages::plan::build(&tprogram, &baseline_cold, options);

    // Validate telemetry region indices against the baseline plan before
    // trusting any row.
    for row in &attribution.regions {
        if row.region as usize >= baseline_plan.regions.len() {
            return Err(SquashError::msg(format!(
                "telemetry attributes region {} but the baseline plan has {} \
                 regions — telemetry from a different program or options?",
                row.region,
                baseline_plan.regions.len()
            )));
        }
    }

    let heat = spread_heat(&baseline_plan, &tprofile, attribution);
    let hot: Vec<usize> = attribution
        .regions
        .iter()
        .filter(|r| r.decompressions + r.hits > 0 || r.total_cycles() > 0)
        .map(|r| r.region as usize)
        .collect();

    // A run that never entered a region legitimately omits the runtime
    // section (all counters zero); treat it as zero decompressor charge.
    let base_cycles =
        run.cycles.saturating_sub(telemetry.runtime.map_or(0, |r| r.cycles_charged));

    // Build the ladder: the static identity first, then every distinct
    // (θ′, K′) with hot regions demoted.
    let mut rungs: Vec<(f64, u32, bool)> = vec![(options.theta, options.buffer_limit, false)];
    for theta in [options.theta / 2.0, options.theta, (options.theta * 2.0).min(1.0)] {
        for k in [
            (options.buffer_limit / 2).max(64),
            options.buffer_limit,
            options.buffer_limit.saturating_mul(2),
        ] {
            let rung = (theta, k, true);
            if !rungs
                .iter()
                .any(|r| r.0.to_bits() == rung.0.to_bits() && r.1 == rung.1 && r.2 == rung.2)
            {
                rungs.push(rung);
            }
        }
    }

    let mut candidates = Vec::with_capacity(rungs.len());
    let mut images = Vec::with_capacity(rungs.len());
    for &(theta, buffer_limit, demote) in &rungs {
        let mut copts = options.clone();
        copts.theta = theta;
        copts.buffer_limit = buffer_limit;
        let mut ccold = cold::identify(&tprogram, &tprofile, theta)?;
        if demote {
            for &ri in &hot {
                for &(f, b) in &baseline_plan.regions[ri].blocks {
                    let words = block_emitted_words(&tprogram.funcs[f.0].blocks[b], b);
                    ccold.demote(f.0, b, words);
                }
            }
        }
        let cplan = stages::plan::build(&tprogram, &ccold, &copts);
        let squashed = Squasher::from_parts(
            tprogram.clone(),
            copts.clone(),
            ccold,
            table_stats,
        )
        .finish()?;
        let predicted = estimate(base_cycles, &heat, &cplan, &squashed, &tprogram, &copts);
        candidates.push(Candidate {
            theta,
            buffer_limit,
            demoted: demote,
            predicted_cycles: predicted,
            footprint: squashed.stats.footprint.total(),
            regions: cplan.regions.len(),
        });
        images.push(squashed);
    }

    // Lowest prediction wins; ties break toward the smaller image, then the
    // earlier rung (so the static identity wins when nothing was measured).
    let mut winner = 0usize;
    for (i, c) in candidates.iter().enumerate().skip(1) {
        let best = &candidates[winner];
        if (c.predicted_cycles, c.footprint) < (best.predicted_cycles, best.footprint) {
            winner = i;
        }
    }

    let mut squashed = images.swap_remove(winner);
    let win = &candidates[winner];
    squashed.provenance = Some(Provenance {
        kind: ProvenanceKind::Retuned,
        profile_crc,
        telemetry_docs: u32::try_from(telemetry.docs.max(1)).unwrap_or(u32::MAX),
        source: telemetry.name.clone(),
        measured_cycles: run.cycles,
        predicted_cycles: win.predicted_cycles,
        theta: win.theta,
        buffer_limit: win.buffer_limit,
        demoted_regions: if win.demoted {
            u32::try_from(hot.len()).unwrap_or(u32::MAX)
        } else {
            0
        },
        candidates: u32::try_from(candidates.len()).unwrap_or(u32::MAX),
        winner: u32::try_from(winner).unwrap_or(u32::MAX),
    });

    Ok(Retuned {
        squashed,
        report: RetuneReport {
            candidates,
            winner,
            measured_cycles: run.cycles,
            base_cycles,
            hot_regions: hot.len(),
        },
    })
}

/// Spreads each baseline region's measured traffic and stub cycles evenly
/// over its member blocks; blocks the baseline never compressed get their
/// full profile frequency as pessimistic heat.
fn spread_heat(
    baseline_plan: &stages::plan::RegionPlan,
    tprofile: &BlockProfile,
    attribution: &crate::telemetry::AttributionReport,
) -> Heat {
    let mut traps: BTreeMap<(usize, usize), f64> = BTreeMap::new();
    let mut stub_cycles: BTreeMap<(usize, usize), f64> = BTreeMap::new();
    // Mark every baseline-compressed block cold-heat first (0.0 unless its
    // region saw traffic) so membership doubles as the compressed set.
    for region in &baseline_plan.regions {
        for &(f, b) in &region.blocks {
            traps.insert((f.0, b), 0.0);
        }
    }
    for row in &attribution.regions {
        let region = &baseline_plan.regions[row.region as usize];
        let n = region.blocks.len().max(1) as f64;
        let t = (row.decompressions + row.hits) as f64 / n;
        let s = row.stub_cycles as f64 / n;
        for &(f, b) in &region.blocks {
            *traps.entry((f.0, b)).or_insert(0.0) += t;
            *stub_cycles.entry((f.0, b)).or_insert(0.0) += s;
        }
    }
    // Pessimistic heat for everything else: if a candidate compresses a
    // block the baseline kept hot, charge every profiled execution as a
    // potential trap.
    for (fi, f) in tprofile.freq.iter().enumerate() {
        for (bi, &freq) in f.iter().enumerate() {
            traps.entry((fi, bi)).or_insert(freq as f64);
        }
    }
    Heat { traps, stub_cycles }
}

/// Predicts the measured workload's cycle count on a candidate image.
fn estimate(
    base_cycles: u64,
    heat: &Heat,
    plan: &stages::plan::RegionPlan,
    squashed: &layout::Squashed,
    tprogram: &Program,
    options: &SquashOptions,
) -> u64 {
    let cost = &options.cost;
    let offsets = &squashed.runtime.bit_offsets;
    let blob_bits = squashed.runtime.blob.len() as u64 * 8;
    let checked = !squashed.runtime.region_crcs.is_empty();
    let mut est = 0.0f64;
    for (ri, region) in plan.regions.iter().enumerate() {
        let mut region_traps = 0.0f64;
        for &(f, b) in &region.blocks {
            region_traps += heat.traps.get(&(f.0, b)).copied().unwrap_or(0.0);
            est += heat.stub_cycles.get(&(f.0, b)).copied().unwrap_or(0.0);
        }
        if region_traps == 0.0 {
            continue;
        }
        let start = offsets.get(ri).copied().unwrap_or(blob_bits);
        let end = offsets.get(ri + 1).copied().unwrap_or(blob_bits);
        let bits = end.saturating_sub(start);
        let insts = regions::estimate_image_words(tprogram, &region.blocks) as u64;
        let bytes = if checked {
            (end.div_ceil(8)).saturating_sub(start / 8)
        } else {
            0
        };
        let per_trap = cost.per_call
            + cost.per_bit * bits
            + cost.per_inst * insts
            + cost.per_check_byte * bytes;
        est += region_traps * per_trap as f64;
    }
    base_cycles.saturating_add(est.round() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline;

    fn fixture() -> (Program, BlockProfile, SquashOptions) {
        // `once` runs exactly once, `never` not at all: at θ = 0.5 the
        // freq-1 blocks are cold, so the measured run actually enters a
        // region and the retuner has real traffic to react to.
        let program = minicc::build_program(&[r#"
            int work(int x) {
                int i;
                int s = 0;
                for (i = 0; i < x; i = i + 1) s = s + i * 3 + (s % 7);
                return s;
            }
            int once(int x) { return x * x + 41; }
            int never(int x) { return x / 3 - 2; }
            int main() {
                int r = work(40);
                if (r > 0) r = r + once(r) % 17;
                if (r < 0) r = never(r);
                return r % 256;
            }
        "#])
        .unwrap();
        let profile = pipeline::profile(&program, &[vec![]]).unwrap();
        let options = SquashOptions {
            theta: 0.5,
            ..Default::default()
        };
        (program, profile, options)
    }

    fn measured(
        program: &Program,
        profile: &BlockProfile,
        options: &SquashOptions,
    ) -> Telemetry {
        use crate::telemetry::{Recorder, SharedRecorder};
        let squashed = Squasher::new(program, profile, options)
            .unwrap()
            .finish()
            .unwrap();
        let recorder = SharedRecorder::new(Recorder {
            ring: None,
            attribution: Default::default(),
            ..Recorder::default()
        });
        let run =
            pipeline::run_squashed_traced(&squashed, &[], None, Some(recorder.sink()))
                .unwrap();
        let mut telemetry = run.telemetry("fixture");
        telemetry.attribution = Some(recorder.take().attribution.finish(run.cycles));
        telemetry
    }

    #[test]
    fn retuned_never_predicts_worse_than_static_and_attaches_provenance() {
        let (program, profile, options) = fixture();
        let telemetry = measured(&program, &profile, &options);
        let retuned = retune(&program, &profile, &options, &telemetry).unwrap();
        let report = &retuned.report;
        let static_pred = report.candidates[0].predicted_cycles;
        let win_pred = report.candidates[report.winner].predicted_cycles;
        assert!(
            win_pred <= static_pred,
            "winner predicts {win_pred} > static {static_pred}"
        );
        let prov = retuned.squashed.provenance.as_ref().unwrap();
        assert_eq!(prov.kind, ProvenanceKind::Retuned);
        assert_eq!(prov.source, "fixture");
        assert_eq!(prov.measured_cycles, report.measured_cycles);
        assert_eq!(prov.winner as usize, report.winner);
        assert_eq!(prov.candidates as usize, report.candidates.len());
    }

    #[test]
    fn retuned_image_runs_no_slower_on_the_measured_input() {
        let (program, profile, options) = fixture();
        let telemetry = measured(&program, &profile, &options);
        let static_run = {
            let squashed = Squasher::new(&program, &profile, &options)
                .unwrap()
                .finish()
                .unwrap();
            pipeline::run_squashed(&squashed, &[]).unwrap()
        };
        let retuned = retune(&program, &profile, &options, &telemetry).unwrap();
        let retuned_run = pipeline::run_squashed(&retuned.squashed, &[]).unwrap();
        assert!(
            static_run.runtime.decompressions > 0,
            "fixture never entered a region — the test is vacuous"
        );
        assert_eq!(retuned_run.output, static_run.output, "semantics changed");
        assert_eq!(retuned_run.status, static_run.status);
        assert!(
            retuned_run.cycles < static_run.cycles,
            "retuned {} not faster than static {} despite measured traffic",
            retuned_run.cycles,
            static_run.cycles
        );
    }

    #[test]
    fn retune_is_deterministic() {
        let (program, profile, options) = fixture();
        let telemetry = measured(&program, &profile, &options);
        let a = retune(&program, &profile, &options, &telemetry).unwrap();
        let b = retune(&program, &profile, &options, &telemetry).unwrap();
        assert_eq!(a.report, b.report);
        let ia = crate::image_file::write(&a.squashed);
        let ib = crate::image_file::write(&b.squashed);
        assert_eq!(ia, ib, "retuned image bytes differ between identical runs");
    }

    #[test]
    fn missing_sections_are_typed_errors() {
        let (program, profile, options) = fixture();
        let mut telemetry = measured(&program, &profile, &options);
        telemetry.attribution = None;
        let err = retune(&program, &profile, &options, &telemetry).unwrap_err();
        assert!(err.to_string().contains("attribution"), "{err}");
        telemetry.run = None;
        let err = retune(&program, &profile, &options, &telemetry).unwrap_err();
        assert!(err.to_string().contains("run section"), "{err}");
    }

    #[test]
    fn out_of_range_region_rows_are_rejected() {
        let (program, profile, options) = fixture();
        let mut telemetry = measured(&program, &profile, &options);
        if let Some(a) = telemetry.attribution.as_mut() {
            a.regions.push(crate::telemetry::RegionRow {
                region: u16::MAX,
                decompressions: 1,
                ..Default::default()
            });
        }
        let err = retune(&program, &profile, &options, &telemetry).unwrap_err();
        assert!(err.to_string().contains("region"), "{err}");
        assert!(err.to_string().contains("65535"), "{err}");
    }

    #[test]
    fn non_finite_theta_is_rejected_before_any_work() {
        let (program, profile, options) = fixture();
        let telemetry = measured(&program, &profile, &options);
        let mut bad = options.clone();
        bad.theta = f64::NAN;
        let err = retune(&program, &profile, &bad, &telemetry).unwrap_err();
        assert!(err.to_string().contains("finite"), "{err}");
    }
}
