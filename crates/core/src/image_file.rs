//! On-disk format for squashed programs (`.sqsh`).
//!
//! The paper's `squash` writes a transformed *executable*; this module is
//! our equivalent: everything [`crate::pipeline::run_squashed`] needs —
//! memory segments, entry point, and the runtime decompressor's
//! configuration (bases, offset table, compressed blob, serialized
//! canonical-Huffman tables) — in one self-contained byte stream, written by
//! `squashc --emit` and executed by `squashrun`.
//!
//! # `SQSH0003` — the integrity-checked format
//!
//! Version 3 wraps the payload in a checksummed sectioned envelope
//! (all integers little-endian, checksums CRC32C — see
//! [`crate::integrity`] and `DESIGN.md` §13):
//!
//! ```text
//! "SQSH0003"                        magic + version        (8 bytes)
//! u32 file_len                      total file length
//! u32 nsections                     5, or 6 with provenance
//! { u32 len, u32 crc }×nsections    section directory:
//!                                   meta, model, blob, offsets, region_crcs
//!                                   [, provenance]
//! u32 header_crc                    CRC32C of bytes [0, 16 + 8·nsections)
//! ...sections, back to back...
//! ```
//!
//! Section contents:
//!
//! ```text
//! meta:        u32 entry
//!              u32 nsegments { u32 base, u32 len, bytes }*
//!              u32×9  decomp_base, decomp_bytes, buffer_base, buffer_bytes,
//!                     cache_slots, stub_base, stub_slots,
//!                     offset_table_addr, regions
//!              u64×6  cost model (per_bit, per_inst, per_call, create_stub,
//!                     cache_hit, per_check_byte)
//!              u8     skip_if_current
//!              u32×9  footprint fields
//!              u32    baseline_bytes
//! model:       StreamModel::serialize bytes
//! blob:        the compressed code blob
//! offsets:     u32 count { u64 bit_offset }*
//! region_crcs: u32 count { u32 crc }*    (per-region payload checksums)
//! provenance:  [`Provenance`] bytes      (optional sixth section: which
//!                                        profile/telemetry tuned the image)
//! ```
//!
//! Images without provenance (every static-profile squash) keep the
//! five-section layout byte for byte, so adding the section changed nothing
//! about existing images; retuned images append it under the same CRC
//! discipline as every other section (verified eagerly at load — it is a
//! few dozen bytes).
//!
//! The loader verifies the header checksum and the `meta`, `model`,
//! `offsets` and `region_crcs` section checksums before trusting a byte of
//! them. The `blob` section checksum is stored but **not** verified at load
//! by default: compressed regions are verified lazily, one region at a
//! time, at trap time ([`crate::runtime`]), so a cold region that is never
//! executed is never checksummed — the same laziness that makes the paper's
//! scheme cheap. [`read_strict`] verifies the blob section eagerly too.
//!
//! Every load failure is a typed [`MachineCheck`] (bad magic, truncation,
//! forged lengths, checksum mismatches, corrupt code tables) carried inside
//! the returned [`SquashError`], never a panic.
//!
//! # `SQSH0002` — the legacy format
//!
//! Version 2 (the previous flat layout: magic, meta fields, model, blob,
//! offsets, footprint, with a 5-field cost model and no checksums) is still
//! read for compatibility; loaders report it as `integrity: none`.
//! [`write_v2`] still emits it for comparison runs. Version-1 files are
//! rejected by magic.

use squash_compress::StreamModel;

use crate::footprint::Footprint;
use crate::integrity::crc32c;
use crate::layout::{Squashed, SquashStats};
use crate::runtime::RuntimeConfig;
use crate::{CostModel, FaultKind, MachineCheck, SquashError};

const MAGIC_V3: &[u8; 8] = b"SQSH0003";
const MAGIC_V2: &[u8; 8] = b"SQSH0002";

/// Section order in a `SQSH0003` directory. The first [`BASE_SECTIONS`] are
/// always present; `provenance` is optional and, when present, last.
const SECTION_NAMES: [&str; 6] = ["meta", "model", "blob", "offsets", "region_crcs", "provenance"];
/// Sections every v3 image carries.
const BASE_SECTIONS: usize = 5;
/// Byte length of a v3 header with `nsections` directory entries: magic +
/// file_len + nsections + directory. The u32 header checksum follows,
/// covering exactly these bytes.
const fn header_len(nsections: usize) -> usize {
    8 + 4 + 4 + nsections * 8
}

/// Upper bound on the segment count — a sanity cap, far above anything the
/// pipeline emits, protecting the loader from forged counts.
const MAX_SEGMENTS: usize = 64;
/// Upper bound on `cache_slots` (mirrors the squashc CLI limit).
const MAX_CACHE_SLOTS: usize = 1 << 10;

/// A typed loader fault: a [`SquashError`] carrying a [`MachineCheck`] with
/// no location fields (load-time faults have no pc/cycle).
fn fault(kind: FaultKind, detail: impl Into<String>) -> SquashError {
    SquashError::from(MachineCheck::new(kind, detail.into()))
}

/// The format version of a `.sqsh` byte stream, sniffed from the magic:
/// `Some(3)`, `Some(2)`, or `None` for anything unrecognized.
pub fn version(bytes: &[u8]) -> Option<u32> {
    match bytes.get(0..8) {
        Some(m) if m == MAGIC_V3 => Some(3),
        Some(m) if m == MAGIC_V2 => Some(2),
        _ => None,
    }
}

/// Layout version of the serialized `provenance` section.
const PROVENANCE_VERSION: u32 = 1;

/// How an image was tuned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProvenanceKind {
    /// Tuned from the static profile alone (no runtime feedback).
    Static,
    /// Re-tuned from measured runtime telemetry (`squashc --retune`).
    Retuned,
}

/// The provenance record of a tuned image: which profile and how much
/// telemetry evidence produced it, and what the tuner decided. Stored as
/// the optional sixth section of a SQSH0003 image and surfaced by
/// `squashrun --report` / `--stats`, so a fleet operator can always answer
/// "which profile is this image running on?" from the image alone.
#[derive(Debug, Clone, PartialEq)]
pub struct Provenance {
    /// What produced the image.
    pub kind: ProvenanceKind,
    /// CRC-32C of the serialized [`crate::BlockProfile`] the compressor ran
    /// on (the *original* profile, before the jump-table transformation).
    pub profile_crc: u32,
    /// Run documents merged into the telemetry that drove the retune
    /// (≥ 1 for retuned images, 0 for static ones).
    pub telemetry_docs: u32,
    /// `name` of the (merged) telemetry document, or empty.
    pub source: String,
    /// Measured cycles of the run(s) the telemetry describes.
    pub measured_cycles: u64,
    /// The tuner's cost-model prediction for this image on those runs.
    pub predicted_cycles: u64,
    /// The cold threshold θ the image was built with.
    pub theta: f64,
    /// The region size bound K the image was built with.
    pub buffer_limit: u32,
    /// Baseline regions demoted out of the compressed set as hot-in-practice.
    pub demoted_regions: u32,
    /// Candidate images the tuner scored.
    pub candidates: u32,
    /// Index of the winning candidate (0 = the static configuration).
    pub winner: u32,
}

impl Provenance {
    fn serialize(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&PROVENANCE_VERSION.to_le_bytes());
        out.push(match self.kind {
            ProvenanceKind::Static => 0,
            ProvenanceKind::Retuned => 1,
        });
        out.extend_from_slice(&self.profile_crc.to_le_bytes());
        out.extend_from_slice(&self.telemetry_docs.to_le_bytes());
        out.extend_from_slice(&self.measured_cycles.to_le_bytes());
        out.extend_from_slice(&self.predicted_cycles.to_le_bytes());
        out.extend_from_slice(&self.theta.to_bits().to_le_bytes());
        out.extend_from_slice(&self.buffer_limit.to_le_bytes());
        out.extend_from_slice(&self.demoted_regions.to_le_bytes());
        out.extend_from_slice(&self.candidates.to_le_bytes());
        out.extend_from_slice(&self.winner.to_le_bytes());
        out.extend_from_slice(&(self.source.len() as u32).to_le_bytes());
        out.extend_from_slice(self.source.as_bytes());
        out
    }

    fn parse(bytes: &[u8]) -> Result<Provenance, SquashError> {
        let mut r = Reader::new(bytes, "provenance section");
        let version = r.u32()?;
        if version != PROVENANCE_VERSION {
            return Err(fault(
                FaultKind::Truncated,
                format!("unsupported provenance version {version} (expected {PROVENANCE_VERSION})"),
            ));
        }
        let kind = match r.u8()? {
            0 => ProvenanceKind::Static,
            1 => ProvenanceKind::Retuned,
            k => {
                return Err(fault(
                    FaultKind::Truncated,
                    format!("unknown provenance kind {k}"),
                ))
            }
        };
        let profile_crc = r.u32()?;
        let telemetry_docs = r.u32()?;
        let measured_cycles = r.u64()?;
        let predicted_cycles = r.u64()?;
        let theta = f64::from_bits(r.u64()?);
        if !theta.is_finite() {
            return Err(fault(
                FaultKind::Truncated,
                format!("provenance θ is not finite ({theta})"),
            ));
        }
        let buffer_limit = r.u32()?;
        let demoted_regions = r.u32()?;
        let candidates = r.u32()?;
        let winner = r.u32()?;
        let source_len = r.u32()? as usize;
        let source = std::str::from_utf8(r.take(source_len)?)
            .map_err(|_| fault(FaultKind::Truncated, "provenance source is not UTF-8"))?
            .to_string();
        r.done()?;
        Ok(Provenance {
            kind,
            profile_crc,
            telemetry_docs,
            source,
            measured_cycles,
            predicted_cycles,
            theta,
            buffer_limit,
            demoted_regions,
            candidates,
            winner,
        })
    }
}

impl std::fmt::Display for Provenance {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.kind {
            ProvenanceKind::Static => {
                writeln!(f, "provenance: static profile (crc32c {:#010x})", self.profile_crc)?;
            }
            ProvenanceKind::Retuned => {
                writeln!(f, "provenance: retuned from measured telemetry")?;
                writeln!(
                    f,
                    "  profile:    crc32c {:#010x}",
                    self.profile_crc
                )?;
                writeln!(
                    f,
                    "  telemetry:  {} ({} document{}, {} measured cycles)",
                    if self.source.is_empty() { "<unnamed>" } else { &self.source },
                    self.telemetry_docs,
                    if self.telemetry_docs == 1 { "" } else { "s" },
                    self.measured_cycles
                )?;
                writeln!(
                    f,
                    "  tuned:      θ={} K={} ({} of {} candidates, {} regions demoted, \
                     {} predicted cycles)",
                    self.theta,
                    self.buffer_limit,
                    self.winner + 1,
                    self.candidates,
                    self.demoted_regions,
                    self.predicted_cycles
                )?;
            }
        }
        Ok(())
    }
}

/// Serializes a squashed program to the current (`SQSH0003`,
/// integrity-checked) `.sqsh` format.
pub fn write(squashed: &Squashed) -> Vec<u8> {
    let rt = &squashed.runtime;
    let mut sections: Vec<Vec<u8>> = vec![
        write_meta(squashed),
        rt.model.serialize(),
        rt.blob.clone(),
        write_offsets(&rt.bit_offsets),
        write_region_crcs(&rt.region_crcs),
    ];
    // Static images stay byte-identical to the pre-provenance format: the
    // sixth section exists only when there is provenance to record.
    if let Some(prov) = &squashed.provenance {
        sections.push(prov.serialize());
    }
    let header_len = header_len(sections.len());
    let file_len = header_len + 4 + sections.iter().map(Vec::len).sum::<usize>();
    let mut out = Vec::with_capacity(file_len);
    out.extend_from_slice(MAGIC_V3);
    out.extend_from_slice(&(file_len as u32).to_le_bytes());
    out.extend_from_slice(&(sections.len() as u32).to_le_bytes());
    for s in &sections {
        out.extend_from_slice(&(s.len() as u32).to_le_bytes());
        out.extend_from_slice(&crc32c(s).to_le_bytes());
    }
    debug_assert_eq!(out.len(), header_len);
    out.extend_from_slice(&crc32c(&out).to_le_bytes());
    for s in &sections {
        out.extend_from_slice(s);
    }
    debug_assert_eq!(out.len(), file_len);
    out
}

fn write_meta(squashed: &Squashed) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&squashed.entry.to_le_bytes());
    out.extend_from_slice(&(squashed.segments.len() as u32).to_le_bytes());
    for (base, bytes) in &squashed.segments {
        out.extend_from_slice(&base.to_le_bytes());
        out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
        out.extend_from_slice(bytes);
    }
    let rt = &squashed.runtime;
    for v in [
        rt.decomp_base,
        rt.decomp_bytes,
        rt.buffer_base,
        rt.buffer_bytes,
        rt.cache_slots as u32,
        rt.stub_base,
        rt.stub_slots as u32,
        rt.offset_table_addr,
        rt.regions as u32,
    ] {
        out.extend_from_slice(&v.to_le_bytes());
    }
    for v in [
        rt.cost.per_bit,
        rt.cost.per_inst,
        rt.cost.per_call,
        rt.cost.create_stub,
        rt.cost.cache_hit,
        rt.cost.per_check_byte,
    ] {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out.push(rt.skip_if_current as u8);
    write_footprint(&mut out, squashed);
    out
}

fn write_offsets(bit_offsets: &[u64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + bit_offsets.len() * 8);
    out.extend_from_slice(&(bit_offsets.len() as u32).to_le_bytes());
    for &off in bit_offsets {
        out.extend_from_slice(&off.to_le_bytes());
    }
    out
}

fn write_region_crcs(crcs: &[u32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + crcs.len() * 4);
    out.extend_from_slice(&(crcs.len() as u32).to_le_bytes());
    for &crc in crcs {
        out.extend_from_slice(&crc.to_le_bytes());
    }
    out
}

fn write_footprint(out: &mut Vec<u8>, squashed: &Squashed) {
    let fp = &squashed.stats.footprint;
    for v in [
        fp.never_compressed,
        fp.entry_stubs,
        fp.static_stubs,
        fp.decompressor,
        fp.model_tables,
        fp.offset_table,
        fp.compressed,
        fp.stub_area,
        fp.buffer,
    ] {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out.extend_from_slice(&squashed.stats.baseline_bytes.to_le_bytes());
}

/// Serializes a squashed program to the legacy `SQSH0002` format: no
/// checksums, 5-field cost model. Kept so integrity-cost comparisons can
/// run the same image in both formats (`squashc --emit-format 2`).
pub fn write_v2(squashed: &Squashed) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC_V2);
    out.extend_from_slice(&squashed.entry.to_le_bytes());
    out.extend_from_slice(&(squashed.segments.len() as u32).to_le_bytes());
    for (base, bytes) in &squashed.segments {
        out.extend_from_slice(&base.to_le_bytes());
        out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
        out.extend_from_slice(bytes);
    }
    let rt = &squashed.runtime;
    for v in [
        rt.decomp_base,
        rt.decomp_bytes,
        rt.buffer_base,
        rt.buffer_bytes,
        rt.cache_slots as u32,
        rt.stub_base,
        rt.stub_slots as u32,
        rt.offset_table_addr,
        rt.regions as u32,
    ] {
        out.extend_from_slice(&v.to_le_bytes());
    }
    for v in [
        rt.cost.per_bit,
        rt.cost.per_inst,
        rt.cost.per_call,
        rt.cost.create_stub,
        rt.cost.cache_hit,
    ] {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out.push(rt.skip_if_current as u8);
    let model = rt.model.serialize();
    out.extend_from_slice(&(model.len() as u32).to_le_bytes());
    out.extend_from_slice(&model);
    out.extend_from_slice(&(rt.blob.len() as u32).to_le_bytes());
    out.extend_from_slice(&rt.blob);
    out.extend_from_slice(&(rt.bit_offsets.len() as u32).to_le_bytes());
    for &off in &rt.bit_offsets {
        out.extend_from_slice(&off.to_le_bytes());
    }
    write_footprint(&mut out, squashed);
    out
}

/// Bounds-checked cursor over untrusted bytes. Every read is checked
/// arithmetic against the slice; a read past the end is a typed
/// [`FaultKind::Truncated`] fault naming the stream, never a panic or an
/// out-of-bounds slice.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
    /// What is being parsed ("meta section", ".sqsh file", ...) — names the
    /// stream in fault details.
    what: &'static str,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8], what: &'static str) -> Reader<'a> {
        Reader { bytes, pos: 0, what }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SquashError> {
        let end = self.pos.checked_add(n).ok_or_else(|| {
            fault(
                FaultKind::Truncated,
                format!("{}: length overflows at byte {}", self.what, self.pos),
            )
        })?;
        let s = self.bytes.get(self.pos..end).ok_or_else(|| {
            fault(
                FaultKind::Truncated,
                format!(
                    "{}: truncated ({} bytes needed at byte {}, {} available)",
                    self.what,
                    n,
                    self.pos,
                    self.bytes.len() - self.pos
                ),
            )
        })?;
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, SquashError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, SquashError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes(b.try_into().expect("take(4) returns 4 bytes")))
    }

    fn u64(&mut self) -> Result<u64, SquashError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("take(8) returns 8 bytes")))
    }

    /// How many bytes remain — bounds `with_capacity` pre-allocation so a
    /// forged count can never allocate more than the file's own size.
    fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// Requires the stream to be fully consumed (no trailing garbage).
    fn done(&self) -> Result<(), SquashError> {
        if self.pos != self.bytes.len() {
            return Err(fault(
                FaultKind::Truncated,
                format!(
                    "{}: {} trailing bytes after the last field",
                    self.what,
                    self.bytes.len() - self.pos
                ),
            ));
        }
        Ok(())
    }
}

/// Deserializes a `.sqsh` byte stream back into a runnable [`Squashed`],
/// accepting both the current `SQSH0003` format and the legacy `SQSH0002`.
///
/// For v3 images the header checksum and the `meta`, `model`, `offsets` and
/// `region_crcs` section checksums are verified before any content is
/// trusted; the compressed blob is verified lazily per region at trap time.
/// v2 images carry no integrity metadata (`Squashed::runtime.region_crcs`
/// comes back empty, and the runtime verifies and charges nothing).
///
/// Pipeline statistics other than the footprint are not stored and come
/// back zeroed.
///
/// # Errors
///
/// Every failure is a typed machine check (`SquashError::fault` is always
/// populated): bad magic, truncation or forged lengths, checksum
/// mismatches, corrupt embedded tables.
pub fn read(bytes: &[u8]) -> Result<Squashed, SquashError> {
    match version(bytes) {
        Some(3) => read_v3(bytes, false),
        Some(2) => read_v2(bytes),
        _ => Err(fault(
            FaultKind::BadMagic,
            "not a .sqsh file (bad magic; expected SQSH0003 or SQSH0002)",
        )),
    }
}

/// Like [`read`], but fully strict: requires the `SQSH0003` format (v2 has
/// no integrity metadata and is rejected) and verifies the blob section
/// checksum eagerly at load instead of lazily per region.
///
/// # Errors
///
/// As [`read`], plus a [`FaultKind::BadMagic`] fault for v2 images and a
/// [`FaultKind::SectionChecksum`] fault for a corrupt blob section.
pub fn read_strict(bytes: &[u8]) -> Result<Squashed, SquashError> {
    match version(bytes) {
        Some(3) => read_v3(bytes, true),
        Some(2) => Err(fault(
            FaultKind::BadMagic,
            "strict integrity requires SQSH0003 (this is a SQSH0002 image with no checksums)",
        )),
        _ => Err(fault(
            FaultKind::BadMagic,
            "not a .sqsh file (bad magic; expected SQSH0003)",
        )),
    }
}

/// The v3 section directory: one `(offset, len, stored_crc)` entry per
/// section, in [`SECTION_NAMES`] order, validated against the file length.
/// Five or six entries ([`BASE_SECTIONS`], plus `provenance` when present).
fn read_directory(bytes: &[u8]) -> Result<Vec<(usize, usize, u32)>, SquashError> {
    // The header's own length depends on the section count at bytes
    // [12, 16), so that field is read before the checksum can be located.
    // Only two counts are valid; anything else — including a corrupted
    // count byte — is a typed fault here, and a *valid-looking* corrupted
    // count still fails the header checksum below because the checksum was
    // computed over the other header length.
    let Some(count_bytes) = bytes.get(12..16) else {
        return Err(fault(
            FaultKind::Truncated,
            format!(
                ".sqsh header truncated ({} bytes, {} needed)",
                bytes.len(),
                header_len(BASE_SECTIONS) + 4
            ),
        ));
    };
    let nsections =
        u32::from_le_bytes(count_bytes.try_into().expect("slice of 4 bytes")) as usize;
    if nsections != BASE_SECTIONS && nsections != BASE_SECTIONS + 1 {
        return Err(fault(
            FaultKind::Truncated,
            format!(
                "unsupported section count {nsections} (expected {BASE_SECTIONS} or {})",
                BASE_SECTIONS + 1
            ),
        ));
    }
    let header_len = header_len(nsections);
    if bytes.len() < header_len + 4 {
        return Err(fault(
            FaultKind::Truncated,
            format!(".sqsh header truncated ({} bytes, {} needed)", bytes.len(), header_len + 4),
        ));
    }
    // Verify the header checksum before trusting any other header field — a
    // flipped directory length must read as header damage, not whatever
    // downstream inconsistency it happens to cause.
    let stored = u32::from_le_bytes(
        bytes[header_len..header_len + 4]
            .try_into()
            .expect("slice of 4 bytes"),
    );
    let actual = crc32c(&bytes[..header_len]);
    if stored != actual {
        return Err(fault(
            FaultKind::HeaderChecksum,
            format!("header checksum mismatch (stored {stored:#010x}, computed {actual:#010x})"),
        ));
    }
    let mut r = Reader::new(bytes, ".sqsh header");
    r.take(8)?; // magic, already checked
    let file_len = r.u32()? as usize;
    if file_len != bytes.len() {
        return Err(fault(
            FaultKind::Truncated,
            format!(
                "declared file length {} disagrees with actual {} bytes",
                file_len,
                bytes.len()
            ),
        ));
    }
    r.u32()?; // nsections, already read and validated
    let mut dir = vec![(0usize, 0usize, 0u32); nsections];
    let mut offset = header_len + 4; // sections start after the header CRC
    for (i, entry) in dir.iter_mut().enumerate() {
        let len = r.u32()? as usize;
        let crc = r.u32()?;
        *entry = (offset, len, crc);
        offset = offset.checked_add(len).ok_or_else(|| {
            fault(
                FaultKind::Truncated,
                format!("section {} length {} overflows the file offset", SECTION_NAMES[i], len),
            )
        })?;
        if offset > bytes.len() {
            return Err(fault(
                FaultKind::Truncated,
                format!(
                    "section {} (length {}) extends past the end of the file",
                    SECTION_NAMES[i], len
                ),
            ));
        }
    }
    if offset != bytes.len() {
        return Err(fault(
            FaultKind::Truncated,
            format!("{} trailing bytes after the last section", bytes.len() - offset),
        ));
    }
    Ok(dir)
}

fn read_v3(bytes: &[u8], strict: bool) -> Result<Squashed, SquashError> {
    let dir = read_directory(bytes)?;
    let section = |i: usize| &bytes[dir[i].0..dir[i].0 + dir[i].1];
    // Verify section checksums before parsing a byte of them. The blob is
    // deliberately lazy (verified per region at trap time) unless strict;
    // provenance is tiny and verified eagerly like the other sections.
    for i in 0..dir.len() {
        if SECTION_NAMES[i] == "blob" && !strict {
            continue;
        }
        let actual = crc32c(section(i));
        if actual != dir[i].2 {
            return Err(fault(
                FaultKind::SectionChecksum,
                format!(
                    "section {} checksum mismatch (stored {:#010x}, computed {actual:#010x})",
                    SECTION_NAMES[i], dir[i].2
                ),
            ));
        }
    }
    let meta = parse_meta(section(0))?;
    let model = StreamModel::deserialize(section(1))
        .map_err(|e| fault(FaultKind::CodeTableCorrupt, format!("embedded model corrupt: {e}")))?;
    let blob = section(2).to_vec();
    let bit_offsets = parse_offsets(section(3), meta.regions)?;
    let region_crcs = parse_region_crcs(section(4), meta.regions)?;
    let provenance = match dir.len() {
        n if n > BASE_SECTIONS => Some(Provenance::parse(section(BASE_SECTIONS))?),
        _ => None,
    };
    let mut squashed = assemble(meta, model, blob, bit_offsets, region_crcs);
    squashed.provenance = provenance;
    Ok(squashed)
}

/// Everything in the v3 `meta` section (shared with the v2 prefix parser).
struct Meta {
    entry: u32,
    segments: Vec<(u32, Vec<u8>)>,
    decomp_base: u32,
    decomp_bytes: u32,
    buffer_base: u32,
    buffer_bytes: u32,
    cache_slots: usize,
    stub_base: u32,
    stub_slots: usize,
    offset_table_addr: u32,
    regions: usize,
    cost: CostModel,
    skip_if_current: bool,
    footprint: Footprint,
    baseline_bytes: u32,
}

fn parse_segments(r: &mut Reader<'_>) -> Result<Vec<(u32, Vec<u8>)>, SquashError> {
    let nsegs = r.u32()? as usize;
    if nsegs > MAX_SEGMENTS {
        return Err(fault(
            FaultKind::Truncated,
            format!("implausible segment count {nsegs} (limit {MAX_SEGMENTS})"),
        ));
    }
    let mut segments = Vec::with_capacity(nsegs.min(r.remaining() / 8));
    for _ in 0..nsegs {
        let base = r.u32()?;
        let len = r.u32()? as usize;
        segments.push((base, r.take(len)?.to_vec()));
    }
    Ok(segments)
}

/// The nine runtime u32 fields shared by both formats, sanity-capped.
#[allow(clippy::type_complexity)]
fn parse_runtime_fields(
    r: &mut Reader<'_>,
) -> Result<(u32, u32, u32, u32, usize, u32, usize, u32, usize), SquashError> {
    let decomp_base = r.u32()?;
    let decomp_bytes = r.u32()?;
    let buffer_base = r.u32()?;
    let buffer_bytes = r.u32()?;
    let cache_slots = r.u32()? as usize;
    if cache_slots == 0 || cache_slots > MAX_CACHE_SLOTS {
        return Err(fault(
            FaultKind::Truncated,
            format!("implausible cache slot count {cache_slots}"),
        ));
    }
    let stub_base = r.u32()?;
    let stub_slots = r.u32()? as usize;
    let offset_table_addr = r.u32()?;
    let regions = r.u32()? as usize;
    Ok((
        decomp_base,
        decomp_bytes,
        buffer_base,
        buffer_bytes,
        cache_slots,
        stub_base,
        stub_slots,
        offset_table_addr,
        regions,
    ))
}

fn parse_footprint(r: &mut Reader<'_>) -> Result<Footprint, SquashError> {
    Ok(Footprint {
        never_compressed: r.u32()?,
        entry_stubs: r.u32()?,
        static_stubs: r.u32()?,
        decompressor: r.u32()?,
        model_tables: r.u32()?,
        offset_table: r.u32()?,
        compressed: r.u32()?,
        stub_area: r.u32()?,
        buffer: r.u32()?,
    })
}

fn parse_meta(bytes: &[u8]) -> Result<Meta, SquashError> {
    let mut r = Reader::new(bytes, "meta section");
    let entry = r.u32()?;
    let segments = parse_segments(&mut r)?;
    let (
        decomp_base,
        decomp_bytes,
        buffer_base,
        buffer_bytes,
        cache_slots,
        stub_base,
        stub_slots,
        offset_table_addr,
        regions,
    ) = parse_runtime_fields(&mut r)?;
    let cost = CostModel {
        per_bit: r.u64()?,
        per_inst: r.u64()?,
        per_call: r.u64()?,
        create_stub: r.u64()?,
        cache_hit: r.u64()?,
        per_check_byte: r.u64()?,
    };
    let skip_if_current = r.u8()? != 0;
    let footprint = parse_footprint(&mut r)?;
    let baseline_bytes = r.u32()?;
    r.done()?;
    Ok(Meta {
        entry,
        segments,
        decomp_base,
        decomp_bytes,
        buffer_base,
        buffer_bytes,
        cache_slots,
        stub_base,
        stub_slots,
        offset_table_addr,
        regions,
        cost,
        skip_if_current,
        footprint,
        baseline_bytes,
    })
}

fn parse_offsets(bytes: &[u8], regions: usize) -> Result<Vec<u64>, SquashError> {
    let mut r = Reader::new(bytes, "offsets section");
    let noffsets = r.u32()? as usize;
    if noffsets != regions {
        return Err(fault(
            FaultKind::Truncated,
            format!("offset table count {noffsets} disagrees with region count {regions}"),
        ));
    }
    let mut bit_offsets = Vec::with_capacity(noffsets.min(r.remaining() / 8));
    for _ in 0..noffsets {
        bit_offsets.push(r.u64()?);
    }
    r.done()?;
    Ok(bit_offsets)
}

fn parse_region_crcs(bytes: &[u8], regions: usize) -> Result<Vec<u32>, SquashError> {
    let mut r = Reader::new(bytes, "region_crcs section");
    let ncrcs = r.u32()? as usize;
    if ncrcs != regions {
        return Err(fault(
            FaultKind::Truncated,
            format!("region checksum count {ncrcs} disagrees with region count {regions}"),
        ));
    }
    let mut crcs = Vec::with_capacity(ncrcs.min(r.remaining() / 4));
    for _ in 0..ncrcs {
        crcs.push(r.u32()?);
    }
    r.done()?;
    Ok(crcs)
}

fn assemble(
    meta: Meta,
    model: StreamModel,
    blob: Vec<u8>,
    bit_offsets: Vec<u64>,
    region_crcs: Vec<u32>,
) -> Squashed {
    Squashed {
        segments: meta.segments,
        entry: meta.entry,
        runtime: RuntimeConfig {
            decomp_base: meta.decomp_base,
            decomp_bytes: meta.decomp_bytes,
            buffer_base: meta.buffer_base,
            buffer_bytes: meta.buffer_bytes,
            cache_slots: meta.cache_slots,
            stub_base: meta.stub_base,
            stub_slots: meta.stub_slots,
            offset_table_addr: meta.offset_table_addr,
            regions: meta.regions,
            model,
            blob,
            bit_offsets,
            region_crcs,
            cost: meta.cost,
            skip_if_current: meta.skip_if_current,
        },
        stats: SquashStats {
            footprint: meta.footprint,
            baseline_bytes: meta.baseline_bytes,
            regions: meta.regions,
            ..SquashStats::default()
        },
        provenance: None,
    }
}

fn read_v2(bytes: &[u8]) -> Result<Squashed, SquashError> {
    let mut r = Reader::new(bytes, ".sqsh file");
    r.take(8)?; // magic, already checked
    let entry = r.u32()?;
    let segments = parse_segments(&mut r)?;
    let (
        decomp_base,
        decomp_bytes,
        buffer_base,
        buffer_bytes,
        cache_slots,
        stub_base,
        stub_slots,
        offset_table_addr,
        regions,
    ) = parse_runtime_fields(&mut r)?;
    let cost = CostModel {
        per_bit: r.u64()?,
        per_inst: r.u64()?,
        per_call: r.u64()?,
        create_stub: r.u64()?,
        cache_hit: r.u64()?,
        // v2 predates integrity metadata; no region is ever verified, so
        // this rate is never charged. Carry the default for completeness.
        per_check_byte: CostModel::default().per_check_byte,
    };
    let skip_if_current = r.u8()? != 0;
    let model_len = r.u32()? as usize;
    let model = StreamModel::deserialize(r.take(model_len)?)
        .map_err(|e| fault(FaultKind::CodeTableCorrupt, format!("embedded model corrupt: {e}")))?;
    let blob_len = r.u32()? as usize;
    let blob = r.take(blob_len)?.to_vec();
    let noffsets = r.u32()? as usize;
    if noffsets != regions {
        return Err(fault(
            FaultKind::Truncated,
            format!("offset table count {noffsets} disagrees with region count {regions}"),
        ));
    }
    let mut bit_offsets = Vec::with_capacity(noffsets.min(r.remaining() / 8));
    for _ in 0..noffsets {
        bit_offsets.push(r.u64()?);
    }
    let footprint = parse_footprint(&mut r)?;
    let baseline_bytes = r.u32()?;
    r.done()?;
    let meta = Meta {
        entry,
        segments,
        decomp_base,
        decomp_bytes,
        buffer_base,
        buffer_bytes,
        cache_slots,
        stub_base,
        stub_slots,
        offset_table_addr,
        regions,
        cost,
        skip_if_current,
        footprint,
        baseline_bytes,
    };
    // No integrity metadata in this format: empty region_crcs disables
    // trap-time verification (and its cycle charge) entirely.
    Ok(assemble(meta, model, blob, bit_offsets, Vec::new()))
}

/// The interesting truncation boundaries of a serialized image: every
/// header-field edge and every section edge for v3, and the structural
/// prefix edges for v2. Fault-injection tests cut the file at each of these
/// (and at ±1) and require a typed fault, never a panic.
pub fn boundaries(bytes: &[u8]) -> Vec<usize> {
    let mut cuts = vec![0usize, 8, 12, 16];
    match version(bytes) {
        Some(3) => {
            // Directory entry edges, header CRC edge, then section edges.
            // The section count comes from the (untrusted) header; clamp it
            // to the valid range so forged counts still yield sane cuts.
            let n = bytes
                .get(12..16)
                .map(|b| u32::from_le_bytes(b.try_into().expect("4 bytes")) as usize)
                .unwrap_or(BASE_SECTIONS)
                .clamp(BASE_SECTIONS, BASE_SECTIONS + 1);
            for i in 0..n {
                cuts.push(16 + i * 8);
            }
            cuts.push(header_len(n));
            cuts.push(header_len(n) + 4);
            if let Ok(dir) = read_directory(bytes) {
                for (off, len, _) in dir {
                    cuts.push(off);
                    cuts.push(off + len);
                }
            }
        }
        _ => {
            // v2 has no directory; cut at the fixed-field edges and at
            // fractions of the stream so every parser phase sees a cut.
            for f in 1..8 {
                cuts.push(bytes.len() * f / 8);
            }
        }
    }
    cuts.push(bytes.len().saturating_sub(1));
    cuts.retain(|&c| c <= bytes.len());
    cuts.sort_unstable();
    cuts.dedup();
    cuts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline;
    use crate::{SquashOptions, Squasher};

    fn squash_sample() -> Squashed {
        let program = minicc::build_program(&[r#"
            int rare(int x) { return x * 13 % 77; }
            int main() {
                int c = getb();
                if (c == '!') return rare(c);
                return c & 7;
            }
        "#])
        .unwrap();
        let profile = pipeline::profile(&program, &[b"a".to_vec()]).unwrap();
        Squasher::new(&program, &profile, &SquashOptions::default())
            .unwrap()
            .finish()
            .unwrap()
    }

    fn kind_of(e: &SquashError) -> FaultKind {
        e.fault.as_ref().expect("loader errors carry a machine check").kind
    }

    #[test]
    fn round_trip_preserves_everything_needed_to_run() {
        let squashed = squash_sample();
        let bytes = write(&squashed);
        assert_eq!(version(&bytes), Some(3));
        let restored = read(&bytes).expect("read back");
        assert_eq!(restored.entry, squashed.entry);
        assert_eq!(restored.segments, squashed.segments);
        assert_eq!(restored.stats.footprint, squashed.stats.footprint);
        assert_eq!(restored.runtime.region_crcs, squashed.runtime.region_crcs);
        assert_eq!(restored.runtime.cost, squashed.runtime.cost);
        // Behaviour through the restored image matches the live one.
        for input in [&b"x"[..], &b"!"[..]] {
            let live = pipeline::run_squashed(&squashed, input).unwrap();
            let loaded = pipeline::run_squashed(&restored, input).unwrap();
            assert_eq!(live.status, loaded.status);
            assert_eq!(live.output, loaded.output);
        }
        // Strict mode accepts an uncorrupted image.
        read_strict(&bytes).expect("strict read");
    }

    #[test]
    fn v2_round_trip_still_reads_with_no_integrity_metadata() {
        let squashed = squash_sample();
        let bytes = write_v2(&squashed);
        assert_eq!(version(&bytes), Some(2));
        let restored = read(&bytes).expect("read back v2");
        assert_eq!(restored.entry, squashed.entry);
        assert_eq!(restored.segments, squashed.segments);
        assert!(restored.runtime.region_crcs.is_empty());
        let live = pipeline::run_squashed(&squashed, b"!").unwrap();
        let loaded = pipeline::run_squashed(&restored, b"!").unwrap();
        assert_eq!(live.output, loaded.output);
        // But strict mode refuses it.
        let err = read_strict(&bytes).unwrap_err();
        assert_eq!(kind_of(&err), FaultKind::BadMagic);
    }

    #[test]
    fn bad_magic_is_a_typed_fault() {
        let squashed = squash_sample();
        for writer in [write, write_v2] {
            let mut bytes = writer(&squashed);
            bytes[0] = b'X';
            let err = read(&bytes).unwrap_err();
            assert_eq!(kind_of(&err), FaultKind::BadMagic);
        }
        assert_eq!(kind_of(&read(b"").unwrap_err()), FaultKind::BadMagic);
        assert_eq!(kind_of(&read(b"SQSH").unwrap_err()), FaultKind::BadMagic);
        // Version 1 never existed in this codebase; reject by magic.
        assert_eq!(kind_of(&read(b"SQSH0001rest").unwrap_err()), FaultKind::BadMagic);
    }

    #[test]
    fn header_damage_is_a_header_checksum_fault() {
        let squashed = squash_sample();
        let mut bytes = write(&squashed);
        // Flip a bit in the declared length of the model section: the
        // header checksum catches it before any length is trusted.
        bytes[16 + 8] ^= 1;
        let err = read(&bytes).unwrap_err();
        assert_eq!(kind_of(&err), FaultKind::HeaderChecksum);
    }

    #[test]
    fn section_damage_is_a_section_checksum_fault() {
        let squashed = squash_sample();
        let clean = write(&squashed);
        let dir = read_directory(&clean).expect("directory");
        for (i, name) in SECTION_NAMES.iter().take(dir.len()).enumerate() {
            if *name == "blob" {
                continue; // lazy: verified per region at trap time
            }
            let (off, len, _) = dir[i];
            if len == 0 {
                continue;
            }
            let mut bytes = clean.clone();
            bytes[off + len / 2] ^= 0x40;
            let err = read(&bytes).unwrap_err();
            assert_eq!(kind_of(&err), FaultKind::SectionChecksum, "section {name}");
            assert!(err.message.contains(name), "fault should name {name}: {}", err.message);
        }
    }

    #[test]
    fn blob_damage_loads_lazily_but_strict_mode_catches_it() {
        let squashed = squash_sample();
        let clean = write(&squashed);
        let dir = read_directory(&clean).expect("directory");
        let (off, len, _) = dir[2]; // blob
        assert!(len > 0);
        let mut bytes = clean;
        bytes[off + len / 2] ^= 0x01;
        // Default load succeeds — region verification happens at trap time.
        read(&bytes).expect("lazy load tolerates blob damage until a trap");
        let err = read_strict(&bytes).unwrap_err();
        assert_eq!(kind_of(&err), FaultKind::SectionChecksum);
        assert!(err.message.contains("blob"), "{}", err.message);
    }

    #[test]
    fn truncation_at_every_boundary_is_a_typed_fault() {
        let squashed = squash_sample();
        for writer in [write, write_v2] {
            let bytes = writer(&squashed);
            for cut in boundaries(&bytes) {
                if cut == bytes.len() {
                    continue;
                }
                let err = read(&bytes[..cut]).expect_err("truncated image accepted");
                let kind = kind_of(&err);
                assert!(
                    matches!(kind, FaultKind::Truncated | FaultKind::BadMagic),
                    "cut at {cut}: unexpected kind {kind:?}"
                );
            }
        }
    }

    #[test]
    fn forged_huge_lengths_fault_without_overallocating() {
        let squashed = squash_sample();
        // v3: a forged section length is caught by the header checksum; a
        // forged in-section count (e.g. segment count) by the meta parser.
        let bytes = write(&squashed);
        let dir = read_directory(&bytes).expect("directory");
        let (meta_off, meta_len, _) = dir[0];
        let mut forged = bytes.clone();
        // entry(4) then nsegments(4): forge the segment count to u32::MAX
        // and fix up the section checksum so the parser itself must reject.
        forged[meta_off + 4..meta_off + 8].copy_from_slice(&u32::MAX.to_le_bytes());
        let crc = crc32c(&forged[meta_off..meta_off + meta_len]);
        forged[16 + 4..16 + 8].copy_from_slice(&crc.to_le_bytes());
        let hlen = header_len(BASE_SECTIONS);
        let hcrc = crc32c(&forged[..hlen]);
        forged[hlen..hlen + 4].copy_from_slice(&hcrc.to_le_bytes());
        let err = read(&forged).unwrap_err();
        assert_eq!(kind_of(&err), FaultKind::Truncated);

        // v2 has no checksums, so forged lengths hit the parser directly:
        // the segment count at byte 12 and the first segment's length at
        // byte 20.
        let v2 = write_v2(&squashed);
        for field_off in [12usize, 20] {
            let mut forged = v2.clone();
            forged[field_off..field_off + 4].copy_from_slice(&u32::MAX.to_le_bytes());
            let err = read(&forged).expect_err("forged length accepted");
            assert!(
                matches!(kind_of(&err), FaultKind::Truncated | FaultKind::CodeTableCorrupt),
                "forge at {field_off}: {:?}",
                kind_of(&err)
            );
        }
    }

    fn sample_provenance() -> Provenance {
        Provenance {
            kind: ProvenanceKind::Retuned,
            profile_crc: 0xDEAD_BEEF,
            telemetry_docs: 3,
            source: "adpcm+gsm".into(),
            measured_cycles: 123_456_789,
            predicted_cycles: 98_765_432,
            theta: 2e-3,
            buffer_limit: 1024,
            demoted_regions: 4,
            candidates: 9,
            winner: 5,
        }
    }

    /// A provenance-carrying image round-trips as a six-section file; the
    /// same image without provenance keeps the historical five-section
    /// bytes, so static images are unchanged by the format extension.
    #[test]
    fn provenance_round_trips_and_absence_keeps_old_bytes() {
        let mut squashed = squash_sample();
        let static_bytes = write(&squashed);
        squashed.provenance = Some(sample_provenance());
        let bytes = write(&squashed);
        assert_ne!(static_bytes.len(), bytes.len());
        assert_eq!(u32::from_le_bytes(static_bytes[12..16].try_into().unwrap()), 5);
        assert_eq!(u32::from_le_bytes(bytes[12..16].try_into().unwrap()), 6);
        let restored = read(&bytes).expect("read back");
        assert_eq!(restored.provenance, Some(sample_provenance()));
        assert_eq!(restored.segments, squashed.segments);
        read_strict(&bytes).expect("strict accepts provenance images");
        // Behaviour is identical through either form.
        let a = pipeline::run_squashed(&read(&static_bytes).unwrap(), b"!").unwrap();
        let b = pipeline::run_squashed(&restored, b"!").unwrap();
        assert_eq!((a.status, a.output, a.cycles), (b.status, b.output, b.cycles));
    }

    /// Provenance lives under the same CRC discipline as every section:
    /// damage is a section-checksum fault at load, and truncation at every
    /// boundary of the six-section layout stays a typed fault.
    #[test]
    fn provenance_damage_and_truncation_are_typed_faults() {
        let mut squashed = squash_sample();
        squashed.provenance = Some(sample_provenance());
        let clean = write(&squashed);
        let dir = read_directory(&clean).expect("directory");
        let (off, len, _) = dir[BASE_SECTIONS];
        assert!(len > 0);
        let mut bytes = clean.clone();
        bytes[off + len / 2] ^= 0x10;
        let err = read(&bytes).unwrap_err();
        assert_eq!(kind_of(&err), FaultKind::SectionChecksum);
        assert!(err.message.contains("provenance"), "{}", err.message);
        for cut in boundaries(&clean) {
            if cut == clean.len() {
                continue;
            }
            let err = read(&clean[..cut]).expect_err("truncated image accepted");
            let kind = kind_of(&err);
            assert!(
                matches!(kind, FaultKind::Truncated | FaultKind::BadMagic),
                "cut at {cut}: unexpected kind {kind:?}"
            );
        }
        // A forged section count (5 → 6 with no sixth section, or an
        // implausible count) is typed, never a panic.
        let five = write(&squash_sample());
        for forged_count in [4u32, 6, 7, u32::MAX] {
            let mut forged = five.clone();
            forged[12..16].copy_from_slice(&forged_count.to_le_bytes());
            let err = read(&forged).expect_err("forged section count accepted");
            assert!(
                matches!(
                    kind_of(&err),
                    FaultKind::Truncated | FaultKind::HeaderChecksum | FaultKind::BadMagic
                ),
                "count {forged_count}: {:?}",
                kind_of(&err)
            );
        }
    }

    #[test]
    fn file_length_field_must_match() {
        let squashed = squash_sample();
        let mut bytes = write(&squashed);
        // Append trailing garbage: file_len no longer matches.
        bytes.push(0);
        let err = read(&bytes).unwrap_err();
        assert_eq!(kind_of(&err), FaultKind::Truncated);
    }
}
