//! On-disk format for squashed programs (`.sqsh`).
//!
//! The paper's `squash` writes a transformed *executable*; this module is
//! our equivalent: everything [`crate::pipeline::run_squashed`] needs —
//! memory segments, entry point, and the runtime decompressor's
//! configuration (bases, offset table, compressed blob, serialized
//! canonical-Huffman tables) — in one self-contained byte stream, written by
//! `squashc --emit` and executed by `squashrun`.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! "SQSH0002"                       magic + version
//! u32 entry
//! u32 nsegments { u32 base, u32 len, bytes }*
//! u32×9  decomp_base, decomp_bytes, buffer_base, buffer_bytes,
//!        cache_slots, stub_base, stub_slots, offset_table_addr, regions
//! u64×5  cost model (per_bit, per_inst, per_call, create_stub, cache_hit)
//! u8     skip_if_current
//! u32 model_len, model bytes          (StreamModel::serialize)
//! u32 blob_len, blob bytes
//! u32 noffsets { u64 bit_offset }*
//! u32×9  footprint fields
//! u32    baseline_bytes
//! ```
//!
//! Version 2 added the region-cache fields (`cache_slots`, `cache_hit`);
//! version-1 files are rejected by magic.

use squash_compress::StreamModel;

use crate::footprint::Footprint;
use crate::layout::{Squashed, SquashStats};
use crate::runtime::RuntimeConfig;
use crate::{err, CostModel, SquashError};

const MAGIC: &[u8; 8] = b"SQSH0002";

/// Serializes a squashed program to the `.sqsh` byte format.
pub fn write(squashed: &Squashed) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&squashed.entry.to_le_bytes());
    out.extend_from_slice(&(squashed.segments.len() as u32).to_le_bytes());
    for (base, bytes) in &squashed.segments {
        out.extend_from_slice(&base.to_le_bytes());
        out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
        out.extend_from_slice(bytes);
    }
    let rt = &squashed.runtime;
    for v in [
        rt.decomp_base,
        rt.decomp_bytes,
        rt.buffer_base,
        rt.buffer_bytes,
        rt.cache_slots as u32,
        rt.stub_base,
        rt.stub_slots as u32,
        rt.offset_table_addr,
        rt.regions as u32,
    ] {
        out.extend_from_slice(&v.to_le_bytes());
    }
    for v in [
        rt.cost.per_bit,
        rt.cost.per_inst,
        rt.cost.per_call,
        rt.cost.create_stub,
        rt.cost.cache_hit,
    ] {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out.push(rt.skip_if_current as u8);
    let model = rt.model.serialize();
    out.extend_from_slice(&(model.len() as u32).to_le_bytes());
    out.extend_from_slice(&model);
    out.extend_from_slice(&(rt.blob.len() as u32).to_le_bytes());
    out.extend_from_slice(&rt.blob);
    out.extend_from_slice(&(rt.bit_offsets.len() as u32).to_le_bytes());
    for &off in &rt.bit_offsets {
        out.extend_from_slice(&off.to_le_bytes());
    }
    let fp = &squashed.stats.footprint;
    for v in [
        fp.never_compressed,
        fp.entry_stubs,
        fp.static_stubs,
        fp.decompressor,
        fp.model_tables,
        fp.offset_table,
        fp.compressed,
        fp.stub_area,
        fp.buffer,
    ] {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out.extend_from_slice(&squashed.stats.baseline_bytes.to_le_bytes());
    out
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], SquashError> {
        let s = self
            .bytes
            .get(self.pos..self.pos + n)
            .ok_or(SquashError {
                message: "truncated .sqsh file".into(),
            })?;
        self.pos += n;
        Ok(s)
    }

    fn u32(&mut self) -> Result<u32, SquashError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, SquashError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
}

/// Deserializes a `.sqsh` byte stream back into a runnable [`Squashed`].
///
/// Pipeline statistics other than the footprint are not stored and come back
/// zeroed.
///
/// # Errors
///
/// Fails on a bad magic, truncation, or corrupt embedded tables.
pub fn read(bytes: &[u8]) -> Result<Squashed, SquashError> {
    let mut r = Reader { bytes, pos: 0 };
    if r.take(8)? != MAGIC {
        return err("not a .sqsh file (bad magic)");
    }
    let entry = r.u32()?;
    let nsegs = r.u32()? as usize;
    if nsegs > 64 {
        return err("implausible segment count");
    }
    let mut segments = Vec::with_capacity(nsegs);
    for _ in 0..nsegs {
        let base = r.u32()?;
        let len = r.u32()? as usize;
        segments.push((base, r.take(len)?.to_vec()));
    }
    let decomp_base = r.u32()?;
    let decomp_bytes = r.u32()?;
    let buffer_base = r.u32()?;
    let buffer_bytes = r.u32()?;
    let cache_slots = r.u32()? as usize;
    if cache_slots == 0 || cache_slots > 1 << 10 {
        return err("implausible cache slot count");
    }
    let stub_base = r.u32()?;
    let stub_slots = r.u32()? as usize;
    let offset_table_addr = r.u32()?;
    let regions = r.u32()? as usize;
    let cost = CostModel {
        per_bit: r.u64()?,
        per_inst: r.u64()?,
        per_call: r.u64()?,
        create_stub: r.u64()?,
        cache_hit: r.u64()?,
    };
    let skip_if_current = r.take(1)?[0] != 0;
    let model_len = r.u32()? as usize;
    let model = StreamModel::deserialize(r.take(model_len)?).map_err(|e| SquashError {
        message: format!("embedded model corrupt: {e}"),
    })?;
    let blob_len = r.u32()? as usize;
    let blob = r.take(blob_len)?.to_vec();
    let noffsets = r.u32()? as usize;
    if noffsets != regions {
        return err("offset table count disagrees with region count");
    }
    let mut bit_offsets = Vec::with_capacity(noffsets);
    for _ in 0..noffsets {
        bit_offsets.push(r.u64()?);
    }
    let footprint = Footprint {
        never_compressed: r.u32()?,
        entry_stubs: r.u32()?,
        static_stubs: r.u32()?,
        decompressor: r.u32()?,
        model_tables: r.u32()?,
        offset_table: r.u32()?,
        compressed: r.u32()?,
        stub_area: r.u32()?,
        buffer: r.u32()?,
    };
    let baseline_bytes = r.u32()?;
    Ok(Squashed {
        segments,
        entry,
        runtime: RuntimeConfig {
            decomp_base,
            decomp_bytes,
            buffer_base,
            buffer_bytes,
            cache_slots,
            stub_base,
            stub_slots,
            offset_table_addr,
            regions,
            model,
            blob,
            bit_offsets,
            cost,
            skip_if_current,
        },
        stats: SquashStats {
            footprint,
            baseline_bytes,
            regions,
            ..SquashStats::default()
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline;
    use crate::{SquashOptions, Squasher};

    fn squash_sample() -> Squashed {
        let program = minicc::build_program(&[r#"
            int rare(int x) { return x * 13 % 77; }
            int main() {
                int c = getb();
                if (c == '!') return rare(c);
                return c & 7;
            }
        "#])
        .unwrap();
        let profile = pipeline::profile(&program, &[b"a".to_vec()]).unwrap();
        Squasher::new(&program, &profile, &SquashOptions::default())
            .unwrap()
            .finish()
            .unwrap()
    }

    #[test]
    fn round_trip_preserves_everything_needed_to_run() {
        let squashed = squash_sample();
        let bytes = write(&squashed);
        let restored = read(&bytes).expect("read back");
        assert_eq!(restored.entry, squashed.entry);
        assert_eq!(restored.segments, squashed.segments);
        assert_eq!(restored.stats.footprint, squashed.stats.footprint);
        // Behaviour through the restored image matches the live one.
        for input in [&b"x"[..], &b"!"[..]] {
            let live = pipeline::run_squashed(&squashed, input).unwrap();
            let loaded = pipeline::run_squashed(&restored, input).unwrap();
            assert_eq!(live.status, loaded.status);
            assert_eq!(live.output, loaded.output);
        }
    }

    #[test]
    fn bad_magic_rejected() {
        let squashed = squash_sample();
        let mut bytes = write(&squashed);
        bytes[0] = b'X';
        assert!(read(&bytes).unwrap_err().message.contains("magic"));
    }

    #[test]
    fn truncation_rejected_everywhere() {
        let squashed = squash_sample();
        let bytes = write(&squashed);
        for cut in [0, 7, 9, 40, bytes.len() / 2, bytes.len() - 1] {
            assert!(read(&bytes[..cut]).is_err(), "cut at {cut} accepted");
        }
    }
}
