//! # squash — profile-guided code compression
//!
//! A from-scratch reproduction of Debray & Evans, *Profile-Guided Code
//! Compression* (PLDI 2002). Infrequently executed ("cold") regions of a
//! program are compressed with a splitting-streams + canonical-Huffman coder
//! and decompressed **on demand at runtime** into a single small buffer;
//! frequently executed code is left untouched.
//!
//! The pipeline (see the paper's sections in parentheses):
//!
//! 1. [`cold`] — identify cold basic blocks from an execution profile under
//!    a threshold θ (§5);
//! 2. [`jumptables`] — make blocks with indirect jumps compressible, either
//!    by retargeting table entries or by *unswitching* to compare chains
//!    (§6.2);
//! 3. [`regions`] — partition cold blocks into compressible regions bounded
//!    by the runtime-buffer limit K, keep only profitable ones, and pack
//!    small regions together (§4);
//! 4. [`buffer_safe`] — find functions that can never (transitively) invoke
//!    the decompressor, whose call sites need no restore machinery (§6.1);
//! 5. [`layout`] — emit the transformed image: never-compressed code, entry
//!    stubs, the function offset table, the compressed blob, the stub area
//!    and the runtime buffer (§2);
//! 6. [`runtime`] — the decompressor itself, a [`squash_vm::Service`]
//!    implementing on-demand decompression, `CreateStub`, and
//!    reference-counted restore stubs (§2.2–2.3);
//! 7. [`footprint`] — the memory-footprint accounting of §4's cost model.
//!
//! [`Squasher`] ties the steps together; [`pipeline`] adds profiling and
//! run-and-compare helpers used by the tests, examples and benchmarks.
//!
//! # Examples
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use squash::pipeline;
//!
//! let program = minicc::build_program(&[r#"
//!     int rare(int x) { return x * 3 + 1; }
//!     int main() {
//!         int c = getb();
//!         if (c == 'Z') return rare(c);   // cold path
//!         return c > 0;
//!     }
//! "#]).map_err(|e| e.to_string())?;
//! let profile = pipeline::profile(&program, &[b"a".to_vec()])?;
//! let options = squash::SquashOptions { theta: 0.0, ..Default::default() };
//! let squashed = squash::Squasher::new(&program, &profile, &options)?.finish()?;
//! // The squashed program behaves identically on a different input.
//! let original = pipeline::run_original(&program, b"Z")?;
//! let compressed = pipeline::run_squashed(&squashed, b"Z")?;
//! assert_eq!(original.output, compressed.output);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod audit;
pub mod buffer_safe;
pub mod cold;
pub mod fleet;
pub mod footprint;
pub mod image_file;
pub mod integrity;
pub mod jumptables;
pub mod layout;
pub mod monitor;
mod par;
pub mod pipeline;
pub mod regions;
pub mod retune;
pub mod runtime;
pub mod stages;
pub mod telemetry;

use std::collections::HashSet;
use std::fmt;

use squash_cfg::Program;
pub use squash_vm::{FaultKind, MachineCheck};

/// How compressible regions are constructed from cold blocks (§4; the
/// paper's conclusion names "other algorithms for constructing compressible
/// regions" as future work — both are provided).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RegionStrategy {
    /// The paper's algorithm: K-bounded depth-first-search trees rooted at
    /// compressible blocks, profitability-filtered, then greedily packed.
    #[default]
    DfsTree,
    /// A simpler alternative: walk each function's compressible blocks in
    /// layout order, opening a new region whenever the current one would
    /// exceed K, with the same profitability filter and packing. Preserves
    /// fall-throughs well but ignores branch structure.
    LayoutGreedy,
}

/// How restore stubs for calls out of compressed code are provided (§2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RestoreStubMode {
    /// The paper's choice: stubs are created at runtime by `CreateStub` and
    /// garbage-collected by usage count. Costs 2 words per call site in the
    /// buffer and a small reserved stub area.
    #[default]
    Runtime,
    /// The compile-time alternative the paper rejects for its size: every
    /// call site in compressed code gets a permanent 3-word stub in the
    /// never-compressed area (`bsr ra, g ; bsr at, DECOMP ; tag`), and the
    /// buffer call site is a single branch to it. The paper measures these
    /// stubs at 13% of never-compressed code at θ=0 and 27% at θ=0.01.
    CompileTime,
}

/// How blocks ending in an indirect jump through a known table are made
/// compressible (§6.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum JumpTableMode {
    /// Leave the indirect jump; the linker points table entries at entry
    /// stubs when their target block is compressed. (The paper's first
    /// alternative: "update the addresses in the jump table".)
    #[default]
    Retarget,
    /// Replace the indirect jump with a chain of compare-and-branch blocks
    /// (the paper's chosen alternative). The load from the table remains, so
    /// unlike the paper the table's space is not reclaimed — reclaiming
    /// would additionally require dead-code elimination of the address
    /// computation.
    Unswitch,
    /// Exclude such blocks (and the table's target blocks) from compression
    /// — the paper's fallback when a table's extent cannot be determined.
    Exclude,
}

/// The decompression cost model, in simulated cycles. This stands in for
/// the time the paper's in-image software decompressor spends; see
/// `DESIGN.md` for the substitution argument. Defaults are calibrated so
/// that decompressing one maximal (512-byte) region costs on the order of a
/// few thousand cycles, matching the relative overheads the paper reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostModel {
    /// Cycles per compressed bit read (the `DECODE` loop's per-bit work).
    pub per_bit: u64,
    /// Cycles per decompressed instruction written.
    pub per_inst: u64,
    /// Fixed cycles per decompressor invocation (register save/restore,
    /// dispatch, instruction-cache flush).
    pub per_call: u64,
    /// Cycles per `CreateStub` invocation.
    pub create_stub: u64,
    /// Cycles charged when a requested region is already resident in one of
    /// the buffer slots (a region-cache hit). Defaults to 0 so a one-slot
    /// cache reproduces the paper's single-buffer behaviour cycle for cycle;
    /// raise it to model the dispatch cost of the residency check.
    pub cache_hit: u64,
    /// Cycles per blob byte checksummed when verifying a region's
    /// compressed payload before decode (images with integrity metadata
    /// only; a table-driven software CRC costs a few cycles per byte). Runs
    /// of images without checksums charge nothing here, so an uncorrupted
    /// `SQSH0003` run differs from its `SQSH0002` twin by exactly the
    /// `checksum_cycles` the telemetry reports.
    pub per_check_byte: u64,
}

impl Default for CostModel {
    fn default() -> CostModel {
        CostModel {
            per_bit: 4,
            per_inst: 12,
            per_call: 250,
            create_stub: 30,
            cache_hit: 0,
            per_check_byte: 4,
        }
    }
}

/// Configuration for the whole squash pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct SquashOptions {
    /// The cold-code threshold θ ∈ [0, 1]: cold code may account for at most
    /// this fraction of all executed instructions (§5).
    pub theta: f64,
    /// The runtime-buffer size bound K in bytes (§4; the paper settles on
    /// 512 after the Figure 3 sweep).
    pub buffer_limit: u32,
    /// Number of runtime buffer slots forming the decompressed-region cache.
    /// 1 (the default) is the paper's single buffer; larger values reserve
    /// additional K-byte slots, keep decompressed regions resident, and
    /// evict least-recently-used when all slots are full. The footprint
    /// accounting charges all the slots.
    pub cache_slots: usize,
    /// The assumed compression factor γ used by the region-profitability
    /// heuristic (§4; the measured whole-program ratio is ≈ 0.66).
    pub gamma: f64,
    /// Resident size charged for the decompressor's code, in bytes
    /// (its tables are measured exactly and added on top).
    pub decompressor_bytes: u32,
    /// Restore-stub slots reserved in the stub area (each 12 bytes: two
    /// instructions plus the usage count). The paper's maximum observed
    /// concurrency is 9, so the default of 16 gives headroom while keeping
    /// the reserved area small.
    pub stub_slots: usize,
    /// Apply the buffer-safe call optimization (§6.1).
    pub buffer_safe_opt: bool,
    /// Jump-table handling (§6.2).
    pub jump_tables: JumpTableMode,
    /// Pack small regions into larger ones (§4).
    pub pack_regions: bool,
    /// Skip decompression when the requested region is already in the
    /// buffer (off = always decompress, the paper's behaviour).
    pub skip_if_current: bool,
    /// Restore-stub scheme (§2.2).
    pub restore_stubs: RestoreStubMode,
    /// Region construction algorithm (§4 / §9 future work).
    pub region_strategy: RegionStrategy,
    /// Apply move-to-front coding to the displacement streams before
    /// Huffman coding (§3 discusses this variant and rejects it for
    /// decompressor size/speed; available for the ablation).
    pub mtf_displacements: bool,
    /// Worker threads for the parallel pipeline stages (region formation,
    /// pack seeding, region encoding, and profiling fan out over this many
    /// threads). 1 (the default) runs everything inline on the caller's
    /// thread. The emitted image is byte-identical for every value.
    ///
    /// The value is honored literally (so tests can force real threading on
    /// any machine); front-ends translating a user's `--jobs` request should
    /// first pass it through [`effective_jobs`], which caps it at the
    /// hardware parallelism — extra workers on a saturated machine only add
    /// spawn and scheduling overhead.
    pub jobs: usize,
    /// Decompression cost model.
    pub cost: CostModel,
    /// Functions never to compress (the paper excludes functions calling
    /// `setjmp`; minicc has no setjmp, but the hook is honoured and tested).
    /// The entry function is always excluded.
    pub exclude: HashSet<String>,
}

impl Default for SquashOptions {
    fn default() -> SquashOptions {
        SquashOptions {
            theta: 0.0,
            buffer_limit: 512,
            cache_slots: 1,
            gamma: 0.66,
            decompressor_bytes: 2048,
            stub_slots: 16,
            buffer_safe_opt: true,
            jump_tables: JumpTableMode::default(),
            pack_regions: true,
            skip_if_current: false,
            restore_stubs: RestoreStubMode::default(),
            region_strategy: RegionStrategy::default(),
            mtf_displacements: false,
            jobs: 1,
            cost: CostModel::default(),
            exclude: HashSet::new(),
        }
    }
}

/// An error from the squash pipeline.
///
/// When the failure is an integrity fault (corrupt image, checksum
/// mismatch, runtime machine check), `fault` carries the structured
/// [`MachineCheck`] so front-ends can report region/site/cycle/kind and
/// choose a distinct exit code instead of parsing the message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SquashError {
    /// Description of the problem.
    pub message: String,
    /// The structured machine-check record, when the failure is a typed
    /// integrity fault.
    pub fault: Option<MachineCheck>,
}

impl SquashError {
    /// An error with a message and no machine-check record.
    pub fn msg(message: impl Into<String>) -> SquashError {
        SquashError {
            message: message.into(),
            fault: None,
        }
    }
}

impl From<MachineCheck> for SquashError {
    fn from(mc: MachineCheck) -> SquashError {
        SquashError {
            message: mc.to_string(),
            fault: Some(mc),
        }
    }
}

impl fmt::Display for SquashError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "squash error: {}", self.message)
    }
}

impl std::error::Error for SquashError {}

/// Caps a requested worker count at the machine's available parallelism
/// (never below 1). The `jobs` knobs in this crate honor their value
/// literally — byte-identical output for any count — so front-ends use this
/// to translate a user's `--jobs N` into a count that can actually run
/// concurrently, the same way `make -j` style tools size their pools.
pub fn effective_jobs(requested: usize) -> usize {
    let hw = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    requested.clamp(1, hw.max(1))
}

pub(crate) fn err<T>(message: impl Into<String>) -> Result<T, SquashError> {
    Err(SquashError::msg(message))
}

/// Per-block execution frequencies of a program, plus the total executed
/// instruction count (`tot_instr_ct` in §5). Produce one with
/// [`pipeline::profile`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockProfile {
    /// `freq[f][b]` = execution count of block `b` of function `f`.
    pub freq: Vec<Vec<u64>>,
    /// Total instructions executed during profiling.
    pub total_instructions: u64,
}

impl BlockProfile {
    /// Serializes the profile to a compact byte format (so profiling runs
    /// can be separated from compression runs, as with the paper's separate
    /// profiling and squashing steps).
    pub fn serialize(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(b"SQPF0001");
        out.extend_from_slice(&self.total_instructions.to_le_bytes());
        out.extend_from_slice(&(self.freq.len() as u32).to_le_bytes());
        for f in &self.freq {
            out.extend_from_slice(&(f.len() as u32).to_le_bytes());
            for &c in f {
                out.extend_from_slice(&c.to_le_bytes());
            }
        }
        out
    }

    /// Reads a profile written by [`BlockProfile::serialize`].
    ///
    /// # Errors
    ///
    /// Fails on bad magic or truncation. Shape compatibility with a program
    /// is checked later by [`Squasher::new`].
    pub fn deserialize(bytes: &[u8]) -> Result<BlockProfile, SquashError> {
        let mut pos = 0usize;
        let take = |pos: &mut usize, n: usize| -> Result<&[u8], SquashError> {
            let s = bytes
                .get(*pos..pos.checked_add(n).ok_or_else(|| {
                    SquashError::msg("profile length arithmetic overflows")
                })?)
                .ok_or(SquashError::msg("truncated profile file"))?;
            *pos += n;
            Ok(s)
        };
        if take(&mut pos, 8)? != b"SQPF0001" {
            return err("not a squash profile (bad magic)");
        }
        let total_instructions =
            u64::from_le_bytes(take(&mut pos, 8)?.try_into().expect("take(8) returns 8 bytes"));
        let nfuncs = u32::from_le_bytes(take(&mut pos, 4)?.try_into().expect("take(4) returns 4 bytes")) as usize;
        if nfuncs > 1 << 20 {
            return err("implausible function count in profile");
        }
        // Each function record is at least 4 bytes (its block count), so a
        // count the remaining input cannot hold is truncation — reject it
        // here rather than letting a forged header drive the allocation.
        if nfuncs > (bytes.len() - pos) / 4 {
            return err("truncated profile file");
        }
        let mut freq = Vec::with_capacity(nfuncs);
        for _ in 0..nfuncs {
            let n = u32::from_le_bytes(take(&mut pos, 4)?.try_into().expect("take(4) returns 4 bytes")) as usize;
            if n > 1 << 24 {
                return err("implausible block count in profile");
            }
            // 8 bytes per count: cap the allocation by what's actually left.
            if n > (bytes.len() - pos) / 8 {
                return err("truncated profile file");
            }
            let mut f = Vec::with_capacity(n);
            for _ in 0..n {
                f.push(u64::from_le_bytes(take(&mut pos, 8)?.try_into().expect("take(8) returns 8 bytes")));
            }
            freq.push(f);
        }
        Ok(BlockProfile {
            freq,
            total_instructions,
        })
    }
}

/// The driver: runs the pipeline stages in order over one program.
#[derive(Debug)]
pub struct Squasher {
    program: Program,
    options: SquashOptions,
    cold: cold::ColdSet,
    table_stats: jumptables::JumpTableStats,
}

impl Squasher {
    /// Prepares a squash run: applies the jump-table transformation and
    /// identifies cold code.
    ///
    /// # Errors
    ///
    /// Fails if the profile does not match the program's shape or the cold
    /// threshold is non-finite.
    pub fn new(
        program: &Program,
        profile: &BlockProfile,
        options: &SquashOptions,
    ) -> Result<Squasher, SquashError> {
        if profile.freq.len() != program.funcs.len()
            || profile
                .freq
                .iter()
                .zip(&program.funcs)
                .any(|(f, pf)| f.len() != pf.blocks.len())
        {
            return err("profile shape does not match program");
        }
        let (program, profile, table_stats) =
            jumptables::apply(program, profile, options.jump_tables);
        let cold = cold::identify(&program, &profile, options.theta)?;
        Ok(Squasher {
            program,
            options: options.clone(),
            cold,
            table_stats,
        })
    }

    /// Builds a squasher from already-prepared parts: a jump-table-
    /// transformed program and a (possibly feedback-adjusted) cold set.
    /// Used by [`retune`] to emit candidate images from cold sets it has
    /// demoted blocks out of, without re-running the jump-table transform
    /// per candidate.
    pub(crate) fn from_parts(
        program: Program,
        options: SquashOptions,
        cold: cold::ColdSet,
        table_stats: jumptables::JumpTableStats,
    ) -> Squasher {
        Squasher {
            program,
            options,
            cold,
            table_stats,
        }
    }

    /// The (possibly jump-table-transformed) program being squashed.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The cold-code analysis result.
    pub fn cold(&self) -> &cold::ColdSet {
        &self.cold
    }

    /// Runs the staged pipeline — plan, layout, train, encode, assemble —
    /// and returns the finished artifact. See [`stages`] for the stage
    /// decomposition; [`Squasher::finish_observed`] additionally reports
    /// per-stage timing and sizes.
    ///
    /// # Errors
    ///
    /// Propagates layout/compression failures (e.g. displacement overflow).
    pub fn finish(self) -> Result<layout::Squashed, SquashError> {
        self.finish_observed(&mut stages::NullObserver)
    }

    /// [`Squasher::finish`], reporting each stage's wall-clock time and
    /// artifact size to `observer` as it completes.
    ///
    /// # Errors
    ///
    /// Propagates layout/compression failures (e.g. displacement overflow).
    pub fn finish_observed(
        self,
        observer: &mut dyn stages::StageObserver,
    ) -> Result<layout::Squashed, SquashError> {
        let jobs = self.options.jobs;
        let plan = stages::timed(
            observer,
            "plan",
            || stages::plan::build(&self.program, &self.cold, &self.options),
            |p| (p.regions.len(), p.compressed_blocks() as u64 * 4, "regions / block bytes"),
        );
        let (geo, text, images) = stages::timed(
            observer,
            "layout",
            || -> Result<_, SquashError> {
                let geo = layout::geometry(&self.program, &plan, &self.options)?;
                let text = layout::emit_nc_text(&self.program, &geo)?;
                let images = layout::build_images(&self.program, &plan, &geo, &self.options)?;
                Ok((geo, text, images))
            },
            |r| match r {
                Ok((_, text, images)) => (
                    images.images.len(),
                    text.len() as u64 * 4 + images.total_bytes(),
                    "images / text+image bytes",
                ),
                Err(_) => (0, 0, "failed"),
            },
        )?;
        let trained = stages::timed(
            observer,
            "train",
            || stages::train::train(&images.images, &self.options),
            |t| (1, t.table_bytes(), "model / table bytes"),
        );
        let encoded = stages::timed(
            observer,
            "encode",
            || stages::encode::encode(&trained.model, &images.images, jobs),
            |r| match r {
                Ok(e) => (e.bit_offsets.len(), e.blob.len() as u64, "regions / blob bytes"),
                Err(_) => (0, 0, "failed"),
            },
        )?;
        let mut squashed = stages::timed(
            observer,
            "assemble",
            || {
                layout::assemble(
                    &self.program,
                    &plan,
                    &geo,
                    &text,
                    &images,
                    trained,
                    encoded,
                    &self.options,
                )
            },
            |r| match r {
                Ok(s) => (
                    s.segments.len(),
                    s.segments.iter().map(|(_, v)| v.len() as u64).sum(),
                    "segments / bytes",
                ),
                Err(_) => (0, 0, "failed"),
            },
        )?;
        squashed.stats.cold_words = self.cold.cold_words;
        squashed.stats.total_words = self.cold.total_words;
        squashed.stats.jump_tables = self.table_stats;
        Ok(squashed)
    }
}

#[cfg(test)]
mod serde_tests {
    use super::BlockProfile;
    use squash_testkit::{cases, Rng};

    fn random_profile(rng: &mut Rng) -> BlockProfile {
        let nfuncs = rng.below(8) as usize;
        let freq = (0..nfuncs)
            .map(|_| {
                let n = rng.below(12) as usize;
                (0..n).map(|_| rng.u64() >> rng.below(64)).collect()
            })
            .collect();
        BlockProfile {
            freq,
            total_instructions: rng.u64(),
        }
    }

    #[test]
    fn profile_round_trips_through_bytes() {
        cases(0x5e12de, 200, |rng| {
            let profile = random_profile(rng);
            let restored = BlockProfile::deserialize(&profile.serialize())
                .expect("round trip");
            assert_eq!(restored, profile);
        });
    }

    #[test]
    fn truncated_profile_is_a_typed_error() {
        let profile = BlockProfile {
            freq: vec![vec![3, 0, 17], vec![], vec![9]],
            total_instructions: 20,
        };
        let bytes = profile.serialize();
        for cut in 0..bytes.len() {
            assert!(
                BlockProfile::deserialize(&bytes[..cut]).is_err(),
                "cut at {cut} of {} should fail, not panic",
                bytes.len()
            );
        }
    }

    #[test]
    fn corrupted_profile_never_panics() {
        // Flip bytes anywhere (including the magic and the length headers):
        // the decoder must either produce *some* profile or return a typed
        // error — never panic and never over-allocate from a forged count.
        cases(0xc0de, 300, |rng| {
            let profile = random_profile(rng);
            let mut bytes = profile.serialize();
            for _ in 0..=rng.below(4) {
                let i = rng.below(bytes.len() as u64) as usize;
                bytes[i] ^= rng.u8().max(1);
            }
            let _ = BlockProfile::deserialize(&bytes);
        });
    }

    #[test]
    fn forged_counts_are_rejected_without_allocation() {
        // A header claiming 2^20 functions / huge block counts against a
        // tiny payload must fail fast on the remaining-bytes cap.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(b"SQPF0001");
        bytes.extend_from_slice(&7u64.to_le_bytes());
        bytes.extend_from_slice(&(1u32 << 20).to_le_bytes());
        assert!(BlockProfile::deserialize(&bytes).is_err());

        let mut bytes = Vec::new();
        bytes.extend_from_slice(b"SQPF0001");
        bytes.extend_from_slice(&7u64.to_le_bytes());
        bytes.extend_from_slice(&1u32.to_le_bytes());
        bytes.extend_from_slice(&(1u32 << 24).to_le_bytes());
        assert!(BlockProfile::deserialize(&bytes).is_err());
    }
}
