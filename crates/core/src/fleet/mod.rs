//! `core::fleet` — the multi-tenant fleet runtime behind `squashd`.
//!
//! One `squashrun` process runs one image for one caller. The fleet layer
//! (`DESIGN.md` §17) runs a *store* of images for many tenants over a
//! `std::thread` worker pool, engineered for hostile multi-tenancy:
//!
//! * **Admission control.** The queue is bounded by
//!   [`FleetConfig::queue_limit`] counting *outstanding* (queued + running)
//!   jobs; past the bound, [`Fleet::submit`] sheds with a typed
//!   [`FleetError::Overloaded`] — explicit backpressure, never unbounded
//!   memory growth.
//! * **Deadlines.** Every instance runs under a cycle-budget deadline
//!   (request → tenant budget → fleet default) enforced *inside* the VM
//!   step loop as a typed `deadline_exceeded` machine check
//!   ([`squash_vm::Vm::set_deadline`]) — a runaway guest can cost at most
//!   its budget, never a hang.
//! * **Quarantine.** An image that machine-checks
//!   [`FleetConfig::quarantine_threshold`] times is quarantined; later
//!   submissions fail fast with [`FleetError::Quarantined`] without
//!   touching a worker. Deadline faults are resource-policy events, not
//!   image corruption, and deliberately do **not** count toward quarantine.
//!   Transient image-load I/O errors retry with capped exponential backoff
//!   and deterministic seeded jitter ([`RetryPolicy`]).
//! * **Isolation.** Each instance owns its VM, memory, and
//!   `RuntimeStats`; the only shared mutable structure is the host-side
//!   decode cache ([`cache::SharedRegionCache`]), which never alters
//!   simulated state. A tenant hitting quarantine, deadline, or
//!   backpressure leaves every co-tenant's run byte/cycle-identical to a
//!   solo `squashrun` (`tests/fleet.rs` asserts this across worker
//!   counts).
//! * **Containment.** Worker threads wrap each run in an unwind guard: a
//!   panic — which the rest of the test pyramid asserts cannot happen —
//!   would surface as [`FleetError::Internal`] for that request instead of
//!   taking down the pool.

pub mod cache;

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Duration;

use squash_vm::{FaultKind, MachineCheck};

use crate::layout::Squashed;
use crate::pipeline::{self, RunResult};
use crate::telemetry::{FaultCount, Telemetry};
use crate::{image_file, SquashError};

use cache::{CacheStats, SharedRegionCache};

/// Retry schedule for transient image-load failures: capped exponential
/// backoff with deterministic, seeded jitter. The delay for `(key,
/// attempt)` is a pure function of the policy — two fleets configured
/// alike back off identically, which keeps soak runs reproducible while
/// still decorrelating tenants (the jitter hashes the image name).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries after the first failure (0 = fail immediately).
    pub attempts: u32,
    /// Base delay in milliseconds; attempt `n` waits `base_ms << n` before
    /// jitter, capped at `cap_ms`.
    pub base_ms: u64,
    /// Upper bound on the exponential component.
    pub cap_ms: u64,
    /// Jitter seed.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy { attempts: 3, base_ms: 5, cap_ms: 100, seed: 0x5143_5355_4153_4844 }
    }
}

/// SplitMix64 — the same generator the testkit uses, vendored here so the
/// jitter stays deterministic without a dev-dependency.
fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// FNV-1a over the key string, for mixing image names into the jitter.
fn fnv1a(s: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in s.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x1_0000_01B3);
    }
    h
}

impl RetryPolicy {
    /// The backoff delay before retry `attempt` (0-based) of loading
    /// `key`, in milliseconds: `min(base << attempt, cap)` plus a
    /// deterministic jitter of at most half that.
    pub fn delay_ms(&self, key: &str, attempt: u32) -> u64 {
        let exp = self
            .base_ms
            .saturating_mul(1u64 << attempt.min(20))
            .min(self.cap_ms);
        let span = exp / 2 + 1;
        exp + splitmix(self.seed ^ fnv1a(key) ^ attempt as u64) % span
    }

    /// The full deterministic delay schedule for `key`.
    pub fn delays_ms(&self, key: &str) -> Vec<u64> {
        (0..self.attempts).map(|a| self.delay_ms(key, a)).collect()
    }
}

/// Why the fleet rejected or failed a request. Every variant is *typed* —
/// the chaos harness asserts that hostile inputs only ever surface as one
/// of these (or a byte-identical run), never a panic or a hang.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FleetError {
    /// The store has no image by this name (not retried: a missing file is
    /// not transient).
    UnknownImage {
        /// The requested image name.
        image: String,
    },
    /// Transient I/O kept failing after the full retry schedule.
    Load {
        /// The requested image name.
        image: String,
        /// Attempts made (1 initial + retries).
        attempts: u32,
        /// The final I/O error.
        error: String,
    },
    /// The image is quarantined after repeated machine checks; the request
    /// failed fast without reaching a worker.
    Quarantined {
        /// The quarantined image name.
        image: String,
        /// Machine checks recorded against it.
        faults: u32,
    },
    /// Admission control shed the request: the bounded queue was full.
    Overloaded {
        /// Outstanding (queued + running) jobs at submission.
        outstanding: usize,
        /// The configured bound.
        limit: usize,
    },
    /// The run (or image parse) raised a typed machine check — including
    /// `deadline_exceeded` for cycle-budget violations.
    Fault(MachineCheck),
    /// The run failed without a machine check (legacy untyped faults, e.g.
    /// the step limit).
    Run {
        /// The failure message.
        message: String,
    },
    /// A contained panic inside a worker. The chaos harness asserts this
    /// count stays zero; the variant exists so that even the impossible is
    /// an error, not a dead pool.
    Internal {
        /// The panic payload, if printable.
        message: String,
    },
}

impl FleetError {
    /// Stable snake_case label for metrics and `squashd` output.
    pub fn kind(&self) -> &'static str {
        match self {
            FleetError::UnknownImage { .. } => "unknown_image",
            FleetError::Load { .. } => "load",
            FleetError::Quarantined { .. } => "quarantined",
            FleetError::Overloaded { .. } => "overloaded",
            FleetError::Fault(_) => "machine_check",
            FleetError::Run { .. } => "run",
            FleetError::Internal { .. } => "internal",
        }
    }

    /// The machine check, when this error carries one.
    pub fn machine_check(&self) -> Option<&MachineCheck> {
        match self {
            FleetError::Fault(mc) => Some(mc),
            _ => None,
        }
    }
}

impl std::fmt::Display for FleetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FleetError::UnknownImage { image } => write!(f, "unknown image `{image}`"),
            FleetError::Load { image, attempts, error } => {
                write!(f, "loading `{image}` failed after {attempts} attempts: {error}")
            }
            FleetError::Quarantined { image, faults } => {
                write!(f, "image `{image}` is quarantined ({faults} machine checks)")
            }
            FleetError::Overloaded { outstanding, limit } => {
                write!(f, "admission shed: {outstanding} outstanding >= limit {limit}")
            }
            FleetError::Fault(mc) => write!(f, "{mc}"),
            FleetError::Run { message } => f.write_str(message),
            FleetError::Internal { message } => write!(f, "contained panic: {message}"),
        }
    }
}

impl std::error::Error for FleetError {}

/// A parsed image held by the store, with the stable id the shared decode
/// cache keys on.
#[derive(Debug)]
pub struct LoadedImage {
    /// Store name (file stem for directory stores).
    pub name: String,
    /// Store-assigned id, stable for the store's lifetime.
    pub id: u64,
    /// The parsed image.
    pub squashed: Squashed,
}

/// A store of `.sqsh` images: a directory, in-memory entries (tests,
/// chaos mutations), or both. Images parse lazily on first request and are
/// cached parsed; transient read errors follow the [`RetryPolicy`].
#[derive(Debug)]
pub struct ImageStore {
    dir: Option<PathBuf>,
    mem: Mutex<HashMap<String, Vec<u8>>>,
    loaded: Mutex<HashMap<String, Arc<LoadedImage>>>,
    next_id: AtomicU64,
    retry: RetryPolicy,
    retries_observed: AtomicU64,
}

impl ImageStore {
    /// A store over `dir`: image `name` lives at `dir/name.sqsh`.
    pub fn open(dir: impl Into<PathBuf>, retry: RetryPolicy) -> ImageStore {
        ImageStore {
            dir: Some(dir.into()),
            mem: Mutex::new(HashMap::new()),
            loaded: Mutex::new(HashMap::new()),
            next_id: AtomicU64::new(1),
            retry,
            retries_observed: AtomicU64::new(0),
        }
    }

    /// A purely in-memory store (tests and the chaos harness).
    pub fn in_memory(retry: RetryPolicy) -> ImageStore {
        ImageStore {
            dir: None,
            mem: Mutex::new(HashMap::new()),
            loaded: Mutex::new(HashMap::new()),
            next_id: AtomicU64::new(1),
            retry,
            retries_observed: AtomicU64::new(0),
        }
    }

    /// Adds (or replaces) raw image bytes under `name`. Replacement drops
    /// any cached parse so the new bytes take effect.
    pub fn add_bytes(&self, name: impl Into<String>, bytes: Vec<u8>) {
        let name = name.into();
        lock_recover(&self.loaded).remove(&name);
        lock_recover(&self.mem).insert(name, bytes);
    }

    /// The image names available: in-memory entries plus `*.sqsh` file
    /// stems in the directory, sorted and deduplicated.
    ///
    /// # Errors
    ///
    /// I/O errors listing the directory.
    pub fn names(&self) -> std::io::Result<Vec<String>> {
        let mut names: Vec<String> = lock_recover(&self.mem).keys().cloned().collect();
        if let Some(dir) = &self.dir {
            for entry in std::fs::read_dir(dir)? {
                let path = entry?.path();
                if path.extension().is_some_and(|e| e == "sqsh") {
                    if let Some(stem) = path.file_stem().and_then(|s| s.to_str()) {
                        names.push(stem.to_string());
                    }
                }
            }
        }
        names.sort();
        names.dedup();
        Ok(names)
    }

    /// Backoff sleeps taken so far (observability for the retry path).
    pub fn load_retries(&self) -> u64 {
        self.retries_observed.load(Ordering::Relaxed)
    }

    /// Reads raw bytes for `name`, retrying transient I/O errors per the
    /// policy. A missing file or absent entry is `UnknownImage`
    /// immediately — "not found" is not transient.
    fn read_bytes(&self, name: &str) -> Result<Vec<u8>, FleetError> {
        if let Some(bytes) = lock_recover(&self.mem).get(name) {
            return Ok(bytes.clone());
        }
        let Some(dir) = &self.dir else {
            return Err(FleetError::UnknownImage { image: name.to_string() });
        };
        let path = dir.join(format!("{name}.sqsh"));
        let mut attempt = 0u32;
        loop {
            match std::fs::read(&path) {
                Ok(bytes) => return Ok(bytes),
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                    return Err(FleetError::UnknownImage { image: name.to_string() });
                }
                Err(e) => {
                    if attempt >= self.retry.attempts {
                        return Err(FleetError::Load {
                            image: name.to_string(),
                            attempts: attempt + 1,
                            error: e.to_string(),
                        });
                    }
                    let delay = self.retry.delay_ms(name, attempt);
                    self.retries_observed.fetch_add(1, Ordering::Relaxed);
                    std::thread::sleep(Duration::from_millis(delay));
                    attempt += 1;
                }
            }
        }
    }

    /// The parsed image for `name`, loading and verifying it on first use.
    ///
    /// # Errors
    ///
    /// [`FleetError::UnknownImage`] / [`FleetError::Load`] for the store
    /// layer; a typed [`FleetError::Fault`] when the bytes fail the image
    /// format's integrity checks.
    pub fn get(&self, name: &str) -> Result<Arc<LoadedImage>, FleetError> {
        if let Some(img) = lock_recover(&self.loaded).get(name) {
            return Ok(Arc::clone(img));
        }
        let bytes = self.read_bytes(name)?;
        let squashed = image_file::read(&bytes).map_err(fleet_error_from_squash)?;
        let mut loaded = lock_recover(&self.loaded);
        // A racing loader may have won; keep its id so cache keys stay
        // stable.
        if let Some(img) = loaded.get(name) {
            return Ok(Arc::clone(img));
        }
        let img = Arc::new(LoadedImage {
            name: name.to_string(),
            id: self.next_id.fetch_add(1, Ordering::Relaxed),
            squashed,
        });
        loaded.insert(name.to_string(), Arc::clone(&img));
        Ok(img)
    }
}

/// Maps pipeline/loader errors into the fleet taxonomy.
fn fleet_error_from_squash(e: SquashError) -> FleetError {
    match e.fault {
        Some(mc) => FleetError::Fault(mc),
        None => FleetError::Run { message: e.message },
    }
}

/// Per-tenant resource budgets; unset fields fall back to the fleet
/// defaults in [`FleetConfig`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TenantBudget {
    /// Shared-cache slot quota.
    pub cache_quota: Option<usize>,
    /// Per-instance cycle-budget deadline.
    pub deadline: Option<u64>,
}

/// Fleet-wide configuration.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Worker threads driving VM instances.
    pub workers: usize,
    /// Bound on outstanding (queued + running) jobs; submissions past it
    /// shed with [`FleetError::Overloaded`].
    pub queue_limit: usize,
    /// Machine checks before an image is quarantined.
    pub quarantine_threshold: u32,
    /// Default per-instance cycle-budget deadline (`None` = unlimited).
    pub default_deadline: Option<u64>,
    /// Shards in the shared decode cache.
    pub cache_shards: usize,
    /// Entries per shard.
    pub cache_shard_cap: usize,
    /// Default per-tenant shared-cache slot quota.
    pub cache_quota: usize,
    /// Retry schedule for transient image loads.
    pub retry: RetryPolicy,
}

impl Default for FleetConfig {
    fn default() -> FleetConfig {
        FleetConfig {
            workers: 4,
            queue_limit: 256,
            quarantine_threshold: 3,
            default_deadline: None,
            cache_shards: 8,
            cache_shard_cap: 16,
            cache_quota: 32,
            retry: RetryPolicy::default(),
        }
    }
}

/// One unit of fleet work: run `image` on `input` for `tenant`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// The requesting tenant.
    pub tenant: String,
    /// Store name of the image to run.
    pub image: String,
    /// Guest input bytes.
    pub input: Vec<u8>,
    /// Request-level deadline override (cycles).
    pub deadline: Option<u64>,
}

/// Per-tenant counters, snapshot via [`Fleet::metrics`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TenantMetrics {
    /// Tenant name.
    pub tenant: String,
    /// Requests submitted (admitted or not).
    pub submitted: u64,
    /// Runs that completed cleanly.
    pub ok: u64,
    /// Runs that ended in a machine check (including deadlines).
    pub faults: u64,
    /// Of `faults`, how many were `deadline_exceeded`.
    pub deadline_faults: u64,
    /// Requests shed by admission control.
    pub shed: u64,
    /// Requests rejected fast because the image was quarantined.
    pub quarantine_rejected: u64,
    /// Image-load failures after retries, plus unknown images.
    pub load_errors: u64,
    /// Untyped run failures.
    pub run_errors: u64,
    /// Contained panics (asserted zero by the chaos harness).
    pub internal_errors: u64,
    /// Simulated cycles across this tenant's clean runs.
    pub cycles: u64,
    /// Instructions across this tenant's clean runs.
    pub instructions: u64,
}

/// A fleet metrics snapshot: per-tenant counters, shared-cache counters,
/// and the quarantine ledger.
#[derive(Debug, Clone, Default)]
pub struct FleetMetrics {
    /// Per-tenant counters, sorted by tenant name.
    pub tenants: Vec<TenantMetrics>,
    /// Shared decode-cache counters.
    pub cache: CacheStats,
    /// `(image, machine-check count, quarantined?)` per image with
    /// recorded faults.
    pub quarantine: Vec<(String, u32, bool)>,
    /// Backoff sleeps taken by the image store.
    pub load_retries: u64,
}

#[derive(Debug, Default)]
struct TenantInfo {
    id: u32,
    budget: TenantBudget,
    metrics: TenantMetrics,
    /// Per-tenant merged telemetry document (name = tenant).
    telemetry: Telemetry,
}

#[derive(Debug, Default)]
struct QuarantineState {
    faults: u32,
    quarantined: bool,
}

struct Job {
    id: u64,
    tenant: String,
    tenant_id: u32,
    image: String,
    input: Vec<u8>,
    deadline: Option<u64>,
    cache_quota: usize,
}

#[derive(Default)]
struct State {
    queue: VecDeque<Job>,
    outstanding: usize,
    gated: bool,
    shutdown: bool,
    results: HashMap<u64, Result<RunResult, FleetError>>,
    next_job: u64,
    next_tenant: u32,
    tenants: BTreeMap<String, TenantInfo>,
    quarantine: HashMap<String, QuarantineState>,
}

impl State {
    /// Gets or creates the tenant record, assigning ids in first-seen order.
    fn tenant(&mut self, name: &str) -> &mut TenantInfo {
        if !self.tenants.contains_key(name) {
            let id = self.next_tenant;
            self.next_tenant += 1;
            self.tenants
                .insert(name.to_string(), TenantInfo { id, ..TenantInfo::default() });
        }
        self.tenants.get_mut(name).expect("tenant just inserted")
    }
}

struct Inner {
    store: ImageStore,
    cfg: FleetConfig,
    cache: Arc<SharedRegionCache>,
    state: Mutex<State>,
    work_cv: Condvar,
    done_cv: Condvar,
}

/// Locks a possibly-poisoned mutex, recovering the data (a contained
/// panic must not cascade into every later lock).
fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// The fleet runtime: an image store, a shared decode cache, and a worker
/// pool with admission control and quarantine. See the module docs.
pub struct Fleet {
    inner: Arc<Inner>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for Fleet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Fleet")
            .field("workers", &self.workers.len())
            .field("config", &self.inner.cfg)
            .finish()
    }
}

/// A submitted job's handle; redeem it with [`Fleet::drain`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct JobId(u64);

impl Fleet {
    /// Starts a fleet over `store` with `cfg.workers` worker threads.
    pub fn new(store: ImageStore, cfg: FleetConfig) -> Fleet {
        let cache = SharedRegionCache::new(cfg.cache_shards, cfg.cache_shard_cap);
        let inner = Arc::new(Inner {
            store,
            cache,
            state: Mutex::new(State::default()),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            cfg,
        });
        let workers = (0..inner.cfg.workers.max(1))
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("squashd-worker-{i}"))
                    .spawn(move || worker_loop(&inner))
                    .expect("spawn fleet worker")
            })
            .collect();
        Fleet { inner, workers }
    }

    /// Sets a per-tenant budget override (cache quota, deadline).
    pub fn set_tenant_budget(&self, tenant: &str, budget: TenantBudget) {
        let mut state = lock_recover(&self.inner.state);
        state.tenant(tenant).budget = budget;
    }

    /// Submits one request through admission control. Typed failure —
    /// quarantine fast-fail or backpressure shed — is returned immediately
    /// and also recorded in the tenant's counters.
    ///
    /// # Errors
    ///
    /// [`FleetError::Quarantined`] and [`FleetError::Overloaded`]; both
    /// mean the request never reached a worker.
    pub fn submit(&self, req: Request) -> Result<JobId, FleetError> {
        let inner = &self.inner;
        let mut state = lock_recover(&inner.state);
        let (tenant_id, budget) = {
            let info = state.tenant(&req.tenant);
            info.metrics.submitted += 1;
            (info.id, info.budget)
        };
        if let Some(q) = state.quarantine.get(&req.image) {
            if q.quarantined {
                let err =
                    FleetError::Quarantined { image: req.image.clone(), faults: q.faults };
                state.tenant(&req.tenant).metrics.quarantine_rejected += 1;
                return Err(err);
            }
        }
        if state.outstanding >= inner.cfg.queue_limit {
            let err = FleetError::Overloaded {
                outstanding: state.outstanding,
                limit: inner.cfg.queue_limit,
            };
            state.tenant(&req.tenant).metrics.shed += 1;
            return Err(err);
        }
        state.next_job += 1;
        let id = state.next_job;
        let deadline = req
            .deadline
            .or(budget.deadline)
            .or(inner.cfg.default_deadline);
        state.queue.push_back(Job {
            id,
            tenant: req.tenant,
            tenant_id,
            image: req.image,
            input: req.input,
            deadline,
            cache_quota: budget.cache_quota.unwrap_or(inner.cfg.cache_quota),
        });
        state.outstanding += 1;
        drop(state);
        inner.work_cv.notify_one();
        Ok(JobId(id))
    }

    /// Holds workers idle while `true`; used by [`Fleet::run_batch`] so
    /// admission decisions for a burst are deterministic (nothing drains
    /// mid-submission).
    fn set_gate(&self, gated: bool) {
        let mut state = lock_recover(&self.inner.state);
        state.gated = gated;
        drop(state);
        self.inner.work_cv.notify_all();
    }

    /// Blocks until every outstanding job has completed, then takes `id`'s
    /// result. Returns `None` for an unknown or already-taken id.
    pub fn drain(&self, id: JobId) -> Option<Result<RunResult, FleetError>> {
        let mut state = lock_recover(&self.inner.state);
        while state.outstanding > 0 {
            state = self
                .inner
                .done_cv
                .wait(state)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        state.results.remove(&id.0)
    }

    /// Runs a whole batch: submissions are **gated** (workers idle until
    /// every admission decision is made, making shed-vs-admit deterministic
    /// for a burst), then the pool drains and results come back in request
    /// order.
    pub fn run_batch(&self, requests: Vec<Request>) -> Vec<Result<RunResult, FleetError>> {
        self.set_gate(true);
        let tickets: Vec<Result<JobId, FleetError>> =
            requests.into_iter().map(|r| self.submit(r)).collect();
        self.set_gate(false);
        tickets
            .into_iter()
            .map(|t| match t {
                Err(e) => Err(e),
                Ok(id) => self.drain(id).unwrap_or_else(|| {
                    Err(FleetError::Internal { message: "result lost".to_string() })
                }),
            })
            .collect()
    }

    /// A metrics snapshot: per-tenant counters, cache counters, quarantine
    /// ledger.
    pub fn metrics(&self) -> FleetMetrics {
        let state = lock_recover(&self.inner.state);
        let mut quarantine: Vec<(String, u32, bool)> = state
            .quarantine
            .iter()
            .map(|(k, v)| (k.clone(), v.faults, v.quarantined))
            .collect();
        quarantine.sort();
        FleetMetrics {
            tenants: state
                .tenants
                .iter()
                .map(|(name, info)| TenantMetrics {
                    tenant: name.clone(),
                    ..info.metrics.clone()
                })
                .collect(),
            cache: self.inner.cache.stats(),
            quarantine,
            load_retries: self.inner.store.load_retries(),
        }
    }

    /// Per-tenant merged telemetry documents (name = tenant), sorted by
    /// tenant — the fleet analogue of `squashrun --metrics-json`, ready for
    /// `squashmon`.
    pub fn tenant_telemetry(&self) -> Vec<Telemetry> {
        let state = lock_recover(&self.inner.state);
        state
            .tenants
            .iter()
            .map(|(name, info)| Telemetry {
                name: name.clone(),
                ..info.telemetry.clone()
            })
            .collect()
    }

    /// The shared decode cache (stress tests and stats).
    pub fn cache(&self) -> &Arc<SharedRegionCache> {
        &self.inner.cache
    }

    /// The image store.
    pub fn store(&self) -> &ImageStore {
        &self.inner.store
    }
}

impl Drop for Fleet {
    fn drop(&mut self) {
        {
            let mut state = lock_recover(&self.inner.state);
            state.shutdown = true;
        }
        self.inner.work_cv.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn worker_loop(inner: &Arc<Inner>) {
    loop {
        let job = {
            let mut state = lock_recover(&inner.state);
            loop {
                if let Some(job) = (!state.gated).then(|| state.queue.pop_front()).flatten() {
                    break job;
                }
                if state.shutdown {
                    return;
                }
                state = inner
                    .work_cv
                    .wait(state)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        };
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run_job(inner, &job)))
            .unwrap_or_else(|payload| {
                let message = payload
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "non-string panic payload".to_string());
                Err(FleetError::Internal { message })
            });
        finish_job(inner, &job, result);
    }
}

/// Executes one job: load (with retry), then run with the job's deadline
/// and a shared-cache handle bound to `(image, tenant, quota)`.
fn run_job(inner: &Arc<Inner>, job: &Job) -> Result<RunResult, FleetError> {
    let img = inner.store.get(&job.image)?;
    let handle = inner.cache.handle(img.id, job.tenant_id, job.cache_quota);
    pipeline::run_squashed_budgeted(&img.squashed, &job.input, job.deadline, Some(handle))
        .map_err(fleet_error_from_squash)
}

/// Records a completed job: result slot, tenant counters, per-tenant
/// telemetry, quarantine ledger.
fn finish_job(inner: &Arc<Inner>, job: &Job, result: Result<RunResult, FleetError>) {
    let mut state = lock_recover(&inner.state);
    // Quarantine ledger first (borrows don't overlap the tenant entry).
    if let Some(mc) = result.as_ref().err().and_then(|e| e.machine_check()) {
        if mc.kind != FaultKind::DeadlineExceeded {
            let q = state.quarantine.entry(job.image.clone()).or_default();
            q.faults += 1;
            if q.faults >= inner.cfg.quarantine_threshold {
                q.quarantined = true;
            }
        }
    }
    {
        let info = state.tenant(&job.tenant);
        match &result {
            Ok(run) => {
                info.metrics.ok += 1;
                info.metrics.cycles = info.metrics.cycles.saturating_add(run.cycles);
                info.metrics.instructions =
                    info.metrics.instructions.saturating_add(run.instructions);
                let doc = run.telemetry(&job.tenant);
                info.telemetry = Telemetry::merge(&[info.telemetry.clone(), doc]);
            }
            Err(FleetError::Fault(mc)) => {
                info.metrics.faults += 1;
                if mc.kind == FaultKind::DeadlineExceeded {
                    info.metrics.deadline_faults += 1;
                }
                let doc = Telemetry {
                    name: job.tenant.clone(),
                    faults: vec![FaultCount { kind: mc.kind.name().to_string(), count: 1 }],
                    ..Telemetry::default()
                };
                info.telemetry = Telemetry::merge(&[info.telemetry.clone(), doc]);
            }
            Err(FleetError::UnknownImage { .. }) | Err(FleetError::Load { .. }) => {
                info.metrics.load_errors += 1;
            }
            Err(FleetError::Run { .. }) => info.metrics.run_errors += 1,
            Err(FleetError::Internal { .. }) => info.metrics.internal_errors += 1,
            // Admission errors never reach a worker.
            Err(FleetError::Quarantined { .. }) | Err(FleetError::Overloaded { .. }) => {}
        }
    }
    state.results.insert(job.id, result);
    state.outstanding -= 1;
    let done = state.outstanding == 0;
    drop(state);
    if done {
        inner.done_cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retry_delays_are_deterministic_capped_and_grow() {
        let p = RetryPolicy { attempts: 6, base_ms: 4, cap_ms: 32, seed: 7 };
        let a = p.delays_ms("imageA");
        let b = p.delays_ms("imageA");
        assert_eq!(a, b, "same key, same schedule");
        assert_ne!(a, p.delays_ms("imageB"), "jitter decorrelates keys");
        assert_eq!(a.len(), 6);
        // Exponential component: 4, 8, 16, 32, 32, 32 — jitter adds at most
        // half, so every delay is within [exp, exp * 1.5].
        for (i, &d) in a.iter().enumerate() {
            let exp = (4u64 << i).min(32);
            assert!(d >= exp && d <= exp + exp / 2, "delay[{i}] = {d}, exp = {exp}");
        }
    }

    #[test]
    fn unknown_image_is_immediate_not_retried() {
        let store = ImageStore::in_memory(RetryPolicy { attempts: 5, ..Default::default() });
        let err = store.get("nope").unwrap_err();
        assert!(matches!(err, FleetError::UnknownImage { .. }));
        assert_eq!(store.load_retries(), 0);
    }

    #[test]
    fn corrupt_bytes_surface_as_typed_fault() {
        let store = ImageStore::in_memory(RetryPolicy::default());
        store.add_bytes("bad", b"definitely not an image".to_vec());
        match store.get("bad") {
            Err(FleetError::Fault(mc)) => {
                assert_eq!(mc.kind, FaultKind::BadMagic);
            }
            other => panic!("expected typed fault, got {other:?}"),
        }
    }

    #[test]
    fn error_kinds_are_stable() {
        let labels = [
            FleetError::UnknownImage { image: "x".into() }.kind(),
            FleetError::Overloaded { outstanding: 1, limit: 1 }.kind(),
            FleetError::Quarantined { image: "x".into(), faults: 3 }.kind(),
        ];
        assert_eq!(labels, ["unknown_image", "overloaded", "quarantined"]);
    }
}
