//! The fleet's shared read-only decompressed-region cache.
//!
//! Many concurrent instances of one image decompress the same cold regions.
//! Host-side, that work is identical every time — the decoded instruction
//! vector is a pure function of `(image, region)` — so the fleet keeps one
//! copy in a process-wide cache and hands refcounted read-only views to the
//! instances. Crucially this shares **host** work only: each instance still
//! writes the decoded words into its own simulated memory and charges the
//! same simulated cycles it would have solo (the charge is a function of
//! `bits`/`insts`, which the cached entry carries), so per-instance cycle
//! counts stay byte/cycle-identical to a solo `squashrun` — the determinism
//! bridge `tests/fleet.rs` asserts.
//!
//! Design points, each load-bearing for hostile multi-tenancy:
//!
//! * **Sharded.** Entries are distributed over `shards` independent mutexes
//!   by a hash of `(image, region)`, so unrelated tenants do not serialize
//!   on one lock.
//! * **Refcounted.** [`RegionRef`] guards count live readers per entry;
//!   eviction (LRU within a shard) only ever reclaims entries with zero
//!   readers. A full shard whose entries are all pinned *bypasses* the cache
//!   for the new region instead of blocking or evicting under a reader.
//! * **Per-tenant quotas and exact attribution.** Every cached entry is
//!   owned by the tenant that inserted it and counts against that tenant's
//!   slot quota; at quota, further fills bypass the cache (the tenant keeps
//!   running, merely without sharing — graceful degradation), so one greedy
//!   tenant cannot evict the whole fleet's working set.
//! * **Failures are never cached.** A region that fails to decode returns
//!   its error to the caller untouched; the next request re-attempts, so a
//!   transiently-poisoned entry cannot wedge the key.
//!
//! Counter discipline: `acquires == releases` once all guards are dropped
//! and `live_readers == 0` — the contention stress tests pin this, which is
//! how "no double-free / no leak" is made checkable without `unsafe`.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use squash_isa::Inst;

/// One decoded region: what the stream model produced, plus whether the
/// fast decoder needed the reference fallback (each acquiring instance
/// replays that into its *own* `RuntimeStats`, keeping per-tenant
/// attribution exact even when the decode itself was shared).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Decoded {
    /// The decoded instructions, pre-relocation (relocation is per-slot and
    /// therefore per-instance).
    pub insts: Vec<Inst>,
    /// Bits the decoder consumed — the cycle charge is derived from this,
    /// identically for cached and fresh decodes.
    pub bits: u64,
    /// Whether the reference decoder had to stand in for the fast one.
    pub ref_fallback: bool,
}

/// Cache key: the store-assigned image id and the region index.
type Key = (u64, u16);

/// A resident entry with its reader count and LRU stamp.
#[derive(Debug)]
struct Entry {
    data: Arc<Decoded>,
    /// Live [`RegionRef`] guards for this entry. Eviction skips any entry
    /// with `readers > 0`.
    readers: usize,
    /// Shard-local logical time of last use.
    last_use: u64,
    /// The tenant whose quota this entry occupies.
    owner: u32,
}

#[derive(Debug, Default)]
struct Shard {
    entries: HashMap<Key, Entry>,
    tick: u64,
}

/// Point-in-time counters for the shared cache (saturating reads of
/// monotonic atomics plus a lock-sweep for the live gauges).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Acquisitions served from a resident entry.
    pub hits: u64,
    /// Acquisitions that had to decode (and, quota permitting, insert).
    pub misses: u64,
    /// Entries reclaimed to make room.
    pub evictions: u64,
    /// Decodes that skipped insertion: owner over quota, or the shard full
    /// of pinned entries. The request still succeeded — this counts lost
    /// sharing, not failures.
    pub bypasses: u64,
    /// Total guard acquisitions handed out.
    pub acquires: u64,
    /// Total guard releases observed. Equals `acquires` when no guard is
    /// live; the refcount stress test pins this.
    pub releases: u64,
    /// Entries currently resident across all shards.
    pub live_entries: u64,
    /// Readers currently pinned across all entries.
    pub live_readers: u64,
}

/// The process-wide shared region cache. Cheap to clone via [`Arc`]; see
/// the module docs for the contention and attribution design.
pub struct SharedRegionCache {
    shards: Box<[Mutex<Shard>]>,
    /// Capacity per shard; total capacity is `shards.len() * shard_cap`.
    shard_cap: usize,
    /// Live-entry count per tenant id (quota accounting).
    tenant_live: Mutex<HashMap<u32, usize>>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    bypasses: AtomicU64,
    acquires: AtomicU64,
    releases: AtomicU64,
}

impl std::fmt::Debug for SharedRegionCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedRegionCache")
            .field("shards", &self.shards.len())
            .field("shard_cap", &self.shard_cap)
            .field("stats", &self.stats())
            .finish()
    }
}

/// SplitMix64 finalizer — a good enough shard spreader for `(image,
/// region)` keys, dependency-free and stable across platforms.
fn spread(key: Key) -> u64 {
    let mut z = key.0 ^ ((key.1 as u64) << 32) ^ 0x9E37_79B9_7F4A_7C15;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Locks a possibly-poisoned mutex, recovering the data. A panic elsewhere
/// in the fleet (already contained by the worker's unwind guard) must not
/// cascade into every other tenant's cache access.
fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl SharedRegionCache {
    /// Creates a cache with `shards` independent shards (rounded up to a
    /// power of two, at least one) of `shard_cap` entries each.
    pub fn new(shards: usize, shard_cap: usize) -> Arc<SharedRegionCache> {
        let n = shards.max(1).next_power_of_two();
        Arc::new(SharedRegionCache {
            shards: (0..n).map(|_| Mutex::new(Shard::default())).collect(),
            shard_cap: shard_cap.max(1),
            tenant_live: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            bypasses: AtomicU64::new(0),
            acquires: AtomicU64::new(0),
            releases: AtomicU64::new(0),
        })
    }

    /// A per-instance handle binding this cache to one `(image, tenant)`
    /// pair — what [`crate::runtime::SquashRuntime::set_decode_cache`]
    /// takes. `quota` caps how many entries the tenant may keep resident.
    pub fn handle(
        self: &Arc<SharedRegionCache>,
        image: u64,
        tenant: u32,
        quota: usize,
    ) -> CacheHandle {
        CacheHandle { cache: Arc::clone(self), image, tenant, quota }
    }

    fn shard(&self, key: Key) -> &Mutex<Shard> {
        let idx = (spread(key) as usize) & (self.shards.len() - 1);
        &self.shards[idx]
    }

    /// Gets the decoded region for `key`, running `decode` on a miss.
    /// Owner-side quota and shard capacity decide whether a miss is
    /// inserted or bypasses the cache; either way the caller gets the data.
    fn get_or_decode<E>(
        &self,
        key: Key,
        owner: u32,
        quota: usize,
        decode: impl FnOnce() -> Result<Decoded, E>,
    ) -> Result<(Arc<Decoded>, bool), E> {
        {
            let mut shard = lock_recover(self.shard(key));
            shard.tick += 1;
            let tick = shard.tick;
            if let Some(e) = shard.entries.get_mut(&key) {
                e.readers += 1;
                e.last_use = tick;
                self.hits.fetch_add(1, Ordering::Relaxed);
                self.acquires.fetch_add(1, Ordering::Relaxed);
                return Ok((Arc::clone(&e.data), true));
            }
        }
        // Decode *outside* the shard lock: decoding is the expensive part,
        // and holding the lock across it would serialize the very work the
        // shards exist to parallelize. Two racing threads may both decode
        // one region; the loser's insert finds the key resident and takes a
        // hit instead — wasted host work, never wrong data (the decode is a
        // pure function).
        self.misses.fetch_add(1, Ordering::Relaxed);
        let data = Arc::new(decode()?);
        // Quota check: over-quota owners get the data uncached.
        let under_quota = {
            let mut live = lock_recover(&self.tenant_live);
            let n = live.entry(owner).or_insert(0);
            if *n < quota {
                *n += 1;
                true
            } else {
                false
            }
        };
        if !under_quota {
            self.bypasses.fetch_add(1, Ordering::Relaxed);
            return Ok((data, false));
        }
        let mut shard = lock_recover(self.shard(key));
        shard.tick += 1;
        let tick = shard.tick;
        if let Some(e) = shard.entries.get_mut(&key) {
            // Lost the decode race; return the quota charge and read the
            // winner's entry.
            e.readers += 1;
            e.last_use = tick;
            self.uncharge(owner);
            self.acquires.fetch_add(1, Ordering::Relaxed);
            return Ok((Arc::clone(&e.data), true));
        }
        if shard.entries.len() >= self.shard_cap {
            // Evict the least recently used entry with no live readers.
            let victim = shard
                .entries
                .iter()
                .filter(|(_, e)| e.readers == 0)
                .min_by_key(|(_, e)| e.last_use)
                .map(|(&k, _)| k);
            match victim {
                Some(v) => {
                    let evicted = shard.entries.remove(&v).expect("victim key just found");
                    debug_assert_eq!(evicted.readers, 0, "evicted a pinned entry");
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                    self.uncharge(evicted.owner);
                }
                None => {
                    // Every entry is pinned: bypass rather than block.
                    self.uncharge(owner);
                    self.bypasses.fetch_add(1, Ordering::Relaxed);
                    return Ok((data, false));
                }
            }
        }
        shard.entries.insert(
            key,
            Entry { data: Arc::clone(&data), readers: 1, last_use: tick, owner },
        );
        self.acquires.fetch_add(1, Ordering::Relaxed);
        Ok((data, true))
    }

    /// Returns one live-entry charge to `owner`'s quota.
    fn uncharge(&self, owner: u32) {
        let mut live = lock_recover(&self.tenant_live);
        if let Some(n) = live.get_mut(&owner) {
            *n = n.saturating_sub(1);
        }
    }

    /// Drops one reader from `key` (guard release path).
    fn release(&self, key: Key) {
        self.releases.fetch_add(1, Ordering::Relaxed);
        let mut shard = lock_recover(self.shard(key));
        if let Some(e) = shard.entries.get_mut(&key) {
            e.readers = e.readers.saturating_sub(1);
        }
    }

    /// Current counters (see [`CacheStats`]).
    pub fn stats(&self) -> CacheStats {
        let mut live_entries = 0u64;
        let mut live_readers = 0u64;
        for shard in self.shards.iter() {
            let shard = lock_recover(shard);
            live_entries += shard.entries.len() as u64;
            live_readers += shard.entries.values().map(|e| e.readers as u64).sum::<u64>();
        }
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            bypasses: self.bypasses.load(Ordering::Relaxed),
            acquires: self.acquires.load(Ordering::Relaxed),
            releases: self.releases.load(Ordering::Relaxed),
            live_entries,
            live_readers,
        }
    }

    /// Live resident entries attributed to `tenant` (quota accounting view).
    pub fn tenant_live(&self, tenant: u32) -> usize {
        lock_recover(&self.tenant_live).get(&tenant).copied().unwrap_or(0)
    }
}

/// A cache bound to one `(image, tenant, quota)` triple; what the runtime
/// service holds. Cloning shares the underlying cache.
#[derive(Debug, Clone)]
pub struct CacheHandle {
    cache: Arc<SharedRegionCache>,
    image: u64,
    tenant: u32,
    quota: usize,
}

impl CacheHandle {
    /// Decoded data for `region`, shared when resident, decoding via
    /// `decode` otherwise. Errors from `decode` pass through uncached.
    pub fn get_or_decode<E>(
        &self,
        region: u16,
        decode: impl FnOnce() -> Result<Decoded, E>,
    ) -> Result<RegionRef, E> {
        let key = (self.image, region);
        let (data, cached) =
            self.cache.get_or_decode(key, self.tenant, self.quota, decode)?;
        Ok(RegionRef {
            data,
            slot: cached.then(|| (Arc::clone(&self.cache), key)),
        })
    }

    /// The underlying shared cache.
    pub fn cache(&self) -> &Arc<SharedRegionCache> {
        &self.cache
    }
}

/// A refcounted read-only view of a decoded region. While any `RegionRef`
/// for an entry is live, eviction will not reclaim it; dropping the guard
/// releases the reader slot. A bypassed (uncached) decode yields a guard
/// with no slot — same API, nothing to release.
#[derive(Debug)]
pub struct RegionRef {
    data: Arc<Decoded>,
    slot: Option<(Arc<SharedRegionCache>, Key)>,
}

impl std::ops::Deref for RegionRef {
    type Target = Decoded;
    fn deref(&self) -> &Decoded {
        &self.data
    }
}

impl Drop for RegionRef {
    fn drop(&mut self) {
        if let Some((cache, key)) = self.slot.take() {
            cache.release(key);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use squash_isa::{AluOp, Reg};

    fn decoded(tag: i16) -> Decoded {
        Decoded {
            insts: vec![Inst::Imm { func: AluOp::Add, ra: Reg::T0, lit: tag as u8, rc: Reg::T0 }],
            bits: tag as u64 * 7 + 3,
            ref_fallback: false,
        }
    }

    #[test]
    fn hit_miss_and_release_accounting() {
        let cache = SharedRegionCache::new(4, 4);
        let h = cache.handle(1, 0, 16);
        let a = h.get_or_decode::<()>(5, || Ok(decoded(5))).unwrap();
        assert_eq!(a.bits, decoded(5).bits);
        let b = h.get_or_decode::<()>(5, || panic!("must hit")).unwrap();
        assert_eq!(b.insts, a.insts);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
        assert_eq!(s.live_readers, 2);
        drop(a);
        drop(b);
        let s = cache.stats();
        assert_eq!(s.live_readers, 0);
        assert_eq!(s.acquires, s.releases);
        assert_eq!(s.live_entries, 1);
    }

    #[test]
    fn decode_errors_pass_through_uncached() {
        let cache = SharedRegionCache::new(1, 4);
        let h = cache.handle(9, 0, 16);
        let e = h.get_or_decode::<&str>(0, || Err("boom")).unwrap_err();
        assert_eq!(e, "boom");
        assert_eq!(cache.stats().live_entries, 0);
        // The key is not poisoned: a later good decode caches normally.
        let ok = h.get_or_decode::<&str>(0, || Ok(decoded(1))).unwrap();
        assert_eq!(cache.stats().live_entries, 1);
        drop(ok);
    }

    #[test]
    fn eviction_skips_pinned_entries() {
        // One shard, capacity 2. Pin region 0; fill with 1; region 2 must
        // evict 1 (unpinned), never 0.
        let cache = SharedRegionCache::new(1, 2);
        let h = cache.handle(1, 0, 16);
        let pinned = h.get_or_decode::<()>(0, || Ok(decoded(0))).unwrap();
        drop(h.get_or_decode::<()>(1, || Ok(decoded(1))).unwrap());
        drop(h.get_or_decode::<()>(2, || Ok(decoded(2))).unwrap());
        assert_eq!(cache.stats().evictions, 1);
        // Region 0 is still resident — no decode happens.
        let again = h.get_or_decode::<()>(0, || panic!("pinned entry was evicted")).unwrap();
        drop(again);
        drop(pinned);
        // With both capacity slots pinned, a third region bypasses.
        let p1 = h.get_or_decode::<()>(0, || Ok(decoded(0))).unwrap();
        let p2 = h.get_or_decode::<()>(2, || Ok(decoded(2))).unwrap();
        let by = h.get_or_decode::<()>(7, || Ok(decoded(7))).unwrap();
        assert!(cache.stats().bypasses >= 1);
        drop((p1, p2, by));
        let s = cache.stats();
        assert_eq!(s.acquires, s.releases);
        assert_eq!(s.live_readers, 0);
    }

    #[test]
    fn tenant_quota_bypasses_not_evicts() {
        let cache = SharedRegionCache::new(1, 8);
        let hog = cache.handle(1, 7, 2);
        for r in 0..4u16 {
            drop(hog.get_or_decode::<()>(r, || Ok(decoded(r as i16))).unwrap());
        }
        // Only 2 entries stuck; the rest bypassed.
        assert_eq!(cache.tenant_live(7), 2);
        assert_eq!(cache.stats().live_entries, 2);
        assert_eq!(cache.stats().bypasses, 2);
        // Another tenant is unaffected by the hog's quota exhaustion.
        let other = cache.handle(1, 8, 2);
        drop(other.get_or_decode::<()>(9, || Ok(decoded(9))).unwrap());
        assert_eq!(cache.tenant_live(8), 1);
    }
}
