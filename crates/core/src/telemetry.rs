//! The unified telemetry layer (`squash-telemetry`): per-region cycle
//! attribution, trap statistics, and one JSON report covering every counter
//! the system produces.
//!
//! Three layers already count things — [`crate::runtime::RuntimeStats`] for
//! the decompressor, [`squash_vm::ICacheStats`] for the instruction-cache
//! model, [`crate::stages::StageStats`] for the compile pipeline. This
//! module unifies them behind one [`Telemetry`] report with a stable JSON
//! schema ([`SCHEMA_VERSION`], emitted by `--metrics-json`), and adds the
//! piece none of them have: **attribution** — which region each
//! service-charged cycle belongs to.
//!
//! Attribution works by bracketing. The runtime emits a
//! [`TraceEvent::ServiceTrap`] at trap entry, *before* charging, and exactly
//! one terminal event (`DecompressEnd`, `CacheHit`, `StubCreate`, `StubHit`)
//! *after* charging, so the cycle-stamp delta between the two is precisely
//! the trap's service charge. The [`Attribution`] sink folds those deltas
//! into per-region and per-call-site tables as events arrive; since every
//! charge in the runtime is bracketed this way, attribution covers 100% of
//! charged cycles (the acceptance bar is ≥ 99%; any remainder is reported
//! as *untracked*, never silently dropped).
//!
//! Tracing observes and never charges: the report is computed entirely from
//! the event stream, and simulated cycles are byte-for-byte identical with
//! and without a sink attached (asserted by `tests/differential.rs`).
//!
//! No external JSON crate exists in this workspace, so [`json`] provides the
//! tiny value type, emitter and parser the schema needs — the same
//! hand-rolled approach `squash_bench::report` already uses.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use squash_vm::{ICacheStats, JsonlRing, TraceEvent, TraceSink, TrapKind};

use crate::runtime::RuntimeStats;
use crate::stages::StageStats;

/// Version stamped into every [`Telemetry`] JSON document as `"schema"`.
/// Consumers reject documents with a larger major version; fields may be
/// added within a version (all structs behind the schema are
/// `#[non_exhaustive]` or crate-local for exactly this reason).
///
/// History: 1 = PR4 (runtime/attribution sections, integrity counters added
/// in PR5 without a bump — absent keys parse as zero); 2 = fleet merging
/// ([`Telemetry::merge`], the `"docs"` document count). Version-1 documents
/// still parse.
pub const SCHEMA_VERSION: u32 = 2;

pub mod json {
    //! A minimal JSON value: emit, parse, and accessors.
    //!
    //! Integers are kept exact ([`Json::Int`], `i64`) rather than routed
    //! through `f64`, so 64-bit cycle counters round-trip byte-for-byte.

    use std::fmt;

    /// One JSON value.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Json {
        /// `null`.
        Null,
        /// `true` / `false`.
        Bool(bool),
        /// An integer (emitted without a decimal point).
        Int(i64),
        /// A non-integer number.
        Num(f64),
        /// A string.
        Str(String),
        /// An array.
        Arr(Vec<Json>),
        /// An object; insertion order is preserved on emission.
        Obj(Vec<(String, Json)>),
    }

    impl Json {
        /// Object field lookup (`None` for non-objects and missing keys).
        pub fn get(&self, key: &str) -> Option<&Json> {
            match self {
                Json::Obj(fields) => {
                    fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
                }
                _ => None,
            }
        }

        /// The value as an `i64`, if it is an integer.
        pub fn as_i64(&self) -> Option<i64> {
            match *self {
                Json::Int(n) => Some(n),
                _ => None,
            }
        }

        /// The value as a `u64`, if it is a non-negative integer.
        pub fn as_u64(&self) -> Option<u64> {
            self.as_i64().and_then(|n| u64::try_from(n).ok())
        }

        /// The value as an `f64` (integers widen).
        pub fn as_f64(&self) -> Option<f64> {
            match *self {
                Json::Int(n) => Some(n as f64),
                Json::Num(n) => Some(n),
                _ => None,
            }
        }

        /// The value as a string slice.
        pub fn as_str(&self) -> Option<&str> {
            match self {
                Json::Str(s) => Some(s),
                _ => None,
            }
        }

        /// The value as an array slice.
        pub fn as_arr(&self) -> Option<&[Json]> {
            match self {
                Json::Arr(items) => Some(items),
                _ => None,
            }
        }

        /// Whether the value is `null`.
        pub fn is_null(&self) -> bool {
            matches!(self, Json::Null)
        }
    }

    impl fmt::Display for Json {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                Json::Null => f.write_str("null"),
                Json::Bool(b) => write!(f, "{b}"),
                Json::Int(n) => write!(f, "{n}"),
                Json::Num(n) if n.is_finite() => {
                    // Keep a syntactic marker so the parser reads it back as
                    // Num, preserving the Int/Num distinction.
                    if n.fract() == 0.0 && n.abs() < 1e15 {
                        write!(f, "{n:.1}")
                    } else {
                        write!(f, "{n}")
                    }
                }
                Json::Num(_) => f.write_str("null"), // NaN/inf have no JSON form
                Json::Str(s) => {
                    f.write_str("\"")?;
                    for c in s.chars() {
                        match c {
                            '"' => f.write_str("\\\"")?,
                            '\\' => f.write_str("\\\\")?,
                            '\n' => f.write_str("\\n")?,
                            '\t' => f.write_str("\\t")?,
                            '\r' => f.write_str("\\r")?,
                            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
                            c => write!(f, "{c}")?,
                        }
                    }
                    f.write_str("\"")
                }
                Json::Arr(items) => {
                    f.write_str("[")?;
                    for (i, v) in items.iter().enumerate() {
                        if i > 0 {
                            f.write_str(",")?;
                        }
                        write!(f, "{v}")?;
                    }
                    f.write_str("]")
                }
                Json::Obj(fields) => {
                    f.write_str("{")?;
                    for (i, (k, v)) in fields.iter().enumerate() {
                        if i > 0 {
                            f.write_str(",")?;
                        }
                        write!(f, "{}:{v}", Json::Str(k.clone()))?;
                    }
                    f.write_str("}")
                }
            }
        }
    }

    /// Parses one JSON document (trailing whitespace allowed, nothing else).
    ///
    /// # Errors
    ///
    /// Returns a message naming the byte offset of the first syntax error.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser { b: text.as_bytes(), i: 0 };
        let v = p.value()?;
        p.skip_ws();
        if p.i != p.b.len() {
            return Err(format!("trailing garbage at byte {}", p.i));
        }
        Ok(v)
    }

    struct Parser<'a> {
        b: &'a [u8],
        i: usize,
    }

    impl Parser<'_> {
        fn skip_ws(&mut self) {
            while self.i < self.b.len() && self.b[self.i].is_ascii_whitespace() {
                self.i += 1;
            }
        }

        fn peek(&mut self) -> Result<u8, String> {
            self.skip_ws();
            self.b
                .get(self.i)
                .copied()
                .ok_or_else(|| "unexpected end of input".into())
        }

        fn expect(&mut self, c: u8) -> Result<(), String> {
            if self.peek()? == c {
                self.i += 1;
                Ok(())
            } else {
                Err(format!("expected '{}' at byte {}", c as char, self.i))
            }
        }

        fn lit(&mut self, word: &str, v: Json) -> Result<Json, String> {
            if self.b[self.i..].starts_with(word.as_bytes()) {
                self.i += word.len();
                Ok(v)
            } else {
                Err(format!("bad literal at byte {}", self.i))
            }
        }

        fn value(&mut self) -> Result<Json, String> {
            match self.peek()? {
                b'n' => self.lit("null", Json::Null),
                b't' => self.lit("true", Json::Bool(true)),
                b'f' => self.lit("false", Json::Bool(false)),
                b'"' => self.string().map(Json::Str),
                b'[' => {
                    self.i += 1;
                    let mut items = Vec::new();
                    if self.peek()? == b']' {
                        self.i += 1;
                        return Ok(Json::Arr(items));
                    }
                    loop {
                        items.push(self.value()?);
                        match self.peek()? {
                            b',' => self.i += 1,
                            b']' => {
                                self.i += 1;
                                return Ok(Json::Arr(items));
                            }
                            _ => return Err(format!("expected ',' or ']' at byte {}", self.i)),
                        }
                    }
                }
                b'{' => {
                    self.i += 1;
                    let mut fields = Vec::new();
                    if self.peek()? == b'}' {
                        self.i += 1;
                        return Ok(Json::Obj(fields));
                    }
                    loop {
                        self.peek()?;
                        let key = self.string()?;
                        self.expect(b':')?;
                        fields.push((key, self.value()?));
                        match self.peek()? {
                            b',' => self.i += 1,
                            b'}' => {
                                self.i += 1;
                                return Ok(Json::Obj(fields));
                            }
                            _ => return Err(format!("expected ',' or '}}' at byte {}", self.i)),
                        }
                    }
                }
                b'-' | b'0'..=b'9' => self.number(),
                c => Err(format!("unexpected '{}' at byte {}", c as char, self.i)),
            }
        }

        fn string(&mut self) -> Result<String, String> {
            self.expect(b'"')?;
            let mut s = String::new();
            loop {
                let c = *self
                    .b
                    .get(self.i)
                    .ok_or("unterminated string")?;
                self.i += 1;
                match c {
                    b'"' => return Ok(s),
                    b'\\' => {
                        let e = *self.b.get(self.i).ok_or("unterminated escape")?;
                        self.i += 1;
                        match e {
                            b'"' => s.push('"'),
                            b'\\' => s.push('\\'),
                            b'/' => s.push('/'),
                            b'n' => s.push('\n'),
                            b't' => s.push('\t'),
                            b'r' => s.push('\r'),
                            b'u' => {
                                let hex = self
                                    .b
                                    .get(self.i..self.i + 4)
                                    .and_then(|h| std::str::from_utf8(h).ok())
                                    .ok_or("truncated \\u escape")?;
                                let code = u32::from_str_radix(hex, 16)
                                    .map_err(|_| "bad \\u escape".to_string())?;
                                self.i += 4;
                                s.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            }
                            _ => return Err(format!("bad escape at byte {}", self.i)),
                        }
                    }
                    c => {
                        // Re-assemble multi-byte UTF-8 sequences.
                        let start = self.i - 1;
                        let len = match c {
                            0xC0..=0xDF => 2,
                            0xE0..=0xEF => 3,
                            0xF0..=0xF7 => 4,
                            _ => 1,
                        };
                        self.i = start + len;
                        let chunk = self
                            .b
                            .get(start..self.i)
                            .and_then(|b| std::str::from_utf8(b).ok())
                            .ok_or("invalid UTF-8 in string")?;
                        s.push_str(chunk);
                    }
                }
            }
        }

        fn number(&mut self) -> Result<Json, String> {
            let start = self.i;
            if self.b[self.i] == b'-' {
                self.i += 1;
            }
            let mut float = false;
            while let Some(&c) = self.b.get(self.i) {
                match c {
                    b'0'..=b'9' => self.i += 1,
                    b'.' | b'e' | b'E' | b'+' | b'-' => {
                        float = true;
                        self.i += 1;
                    }
                    _ => break,
                }
            }
            let text = std::str::from_utf8(&self.b[start..self.i])
                .expect("number scanner only accepts ASCII bytes");
            if !float {
                if let Ok(n) = text.parse::<i64>() {
                    return Ok(Json::Int(n));
                }
            }
            text.parse::<f64>()
                .map(Json::Num)
                .map_err(|_| format!("bad number at byte {start}"))
        }
    }

    /// Shorthand for building an object.
    pub fn obj(fields: Vec<(&str, Json)>) -> Json {
        Json::Obj(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Shorthand for an integer value from any unsigned counter.
    pub fn int(n: u64) -> Json {
        Json::Int(n as i64)
    }
}

use json::{int, obj, Json};

/// Checked narrowing for integers parsed out of untrusted JSON documents: a
/// value that does not fit the target counter type is a typed parse error,
/// never a silent `as` truncation (the retune path feeds these documents
/// straight into indexing, so a truncated region id would alias another
/// region's counters).
fn narrow<T: TryFrom<u64>>(v: u64, what: &str) -> Result<T, String> {
    T::try_from(v).map_err(|_| format!("telemetry: \"{what}\" out of range ({v})"))
}

/// Attribution totals for one region: what its decompressions, cache hits
/// and restore-stub traffic cost, and how long it stayed resident.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct RegionRow {
    /// The region index.
    pub region: u16,
    /// Decompressions of this region.
    pub decompressions: u64,
    /// Region-cache hits on this region.
    pub hits: u64,
    /// Times this region was evicted from the cache.
    pub evictions: u64,
    /// Service cycles spent decompressing this region (trap to
    /// `DecompressEnd`).
    pub decomp_cycles: u64,
    /// Service cycles spent on cache hits for this region.
    pub hit_cycles: u64,
    /// Service cycles spent on `CreateStub` traps from this region's call
    /// sites.
    pub stub_cycles: u64,
    /// Total simulated cycles the region spent resident in the cache.
    pub residency_cycles: u64,
    /// Distinct residency intervals (decompression to eviction / end).
    pub residency_intervals: u64,
}

impl RegionRow {
    /// Total service cycles attributed to this region.
    pub fn total_cycles(&self) -> u64 {
        self.decomp_cycles + self.hit_cycles + self.stub_cycles
    }
}

/// Attribution totals for one call site (the stub tag word
/// `(region << 16) | return_offset`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct SiteRow {
    /// The call site's tag word.
    pub site: u32,
    /// `CreateStub` traps that allocated a stub for this site.
    pub creates: u64,
    /// `CreateStub` traps that reused this site's live stub.
    pub reuses: u64,
    /// Times this site's stub was freed (usage count reached zero).
    pub frees: u64,
    /// Service cycles charged to this site's `CreateStub` traps.
    pub cycles: u64,
}

impl SiteRow {
    /// The region this call site lives in (high half of the tag word).
    pub fn region(&self) -> u16 {
        (self.site >> 16) as u16
    }
}

/// Totals per [`TrapKind`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct TrapCounts {
    /// `CreateStub` traps.
    pub create_stub: u64,
    /// Entry-stub traps.
    pub entry: u64,
    /// Restore-stub traps.
    pub restore: u64,
}

impl TrapCounts {
    /// All traps.
    pub fn total(&self) -> u64 {
        self.create_stub + self.entry + self.restore
    }
}

/// The per-region cycle-attribution sink.
///
/// Feed it the runtime's trace events (it implements [`TraceSink`]) and call
/// [`Attribution::finish`] when the run ends; the resulting
/// [`AttributionReport`] carries the per-region and per-site tables and the
/// trap inter-arrival histogram.
#[derive(Debug, Clone, Default)]
pub struct Attribution {
    regions: BTreeMap<u16, RegionRow>,
    sites: BTreeMap<u32, SiteRow>,
    /// Log₂ histogram of cycles between consecutive service traps: bucket 0
    /// counts zero deltas, bucket i ≥ 1 counts deltas in `[2^(i-1), 2^i)`.
    interarrival: Vec<u64>,
    traps: TrapCounts,
    /// Stamp of the trap currently being serviced (taken by its terminal
    /// event).
    open_trap: Option<u64>,
    /// Stamp of the previous trap, for the inter-arrival histogram.
    prev_trap: Option<u64>,
    /// Regions currently resident: region → cycle residency began.
    resident_since: BTreeMap<u16, u64>,
    /// Sum of all attributed deltas.
    attributed: u64,
    /// Highest cycle stamp seen.
    last_cycle: u64,
}

impl Attribution {
    /// An empty attribution sink.
    pub fn new() -> Attribution {
        Attribution::default()
    }

    fn region(&mut self, region: u16) -> &mut RegionRow {
        self.regions.entry(region).or_insert_with(|| RegionRow {
            region,
            ..RegionRow::default()
        })
    }

    fn site(&mut self, site: u32) -> &mut SiteRow {
        self.sites.entry(site).or_insert_with(|| SiteRow {
            site,
            ..SiteRow::default()
        })
    }

    /// The service charge bracketed by the open trap and this terminal
    /// event's stamp (0 when the emitter was driven without a trap, as unit
    /// tests do).
    fn close_trap(&mut self, cycle: u64) -> u64 {
        let delta = cycle - self.open_trap.take().unwrap_or(cycle);
        self.attributed += delta;
        delta
    }

    fn close_residency(&mut self, region: u16, cycle: u64) {
        if let Some(since) = self.resident_since.remove(&region) {
            let row = self.region(region);
            row.residency_cycles += cycle - since;
            row.residency_intervals += 1;
        }
    }

    /// Consumes the sink and closes open state — residency intervals for
    /// still-resident regions and the open trap, if any — at `end_cycle`
    /// (clamped up to the last stamp seen, so a short `end_cycle` cannot
    /// truncate intervals).
    pub fn finish(mut self, end_cycle: u64) -> AttributionReport {
        let end = end_cycle.max(self.last_cycle);
        let open: Vec<u16> = self.resident_since.keys().copied().collect();
        for region in open {
            self.close_residency(region, end);
        }
        while self.interarrival.last() == Some(&0) {
            self.interarrival.pop();
        }
        AttributionReport {
            regions: self.regions.into_values().collect(),
            sites: self.sites.into_values().collect(),
            interarrival: self.interarrival,
            traps: self.traps,
            attributed_cycles: self.attributed,
            end_cycle: end,
        }
    }
}

/// Histogram bucket for an inter-arrival delta: 0 for zero, else
/// `floor(log2(delta)) + 1` (bucket i covers `[2^(i-1), 2^i)`).
fn bucket_of(delta: u64) -> usize {
    if delta == 0 {
        0
    } else {
        (u64::BITS - delta.leading_zeros()) as usize
    }
}

impl TraceSink for Attribution {
    fn emit(&mut self, cycle: u64, event: &TraceEvent) {
        self.last_cycle = self.last_cycle.max(cycle);
        match *event {
            TraceEvent::ServiceTrap { kind, .. } => {
                match kind {
                    TrapKind::CreateStub => self.traps.create_stub += 1,
                    TrapKind::Entry => self.traps.entry += 1,
                    TrapKind::Restore => self.traps.restore += 1,
                    _ => {}
                }
                if let Some(prev) = self.prev_trap {
                    let b = bucket_of(cycle - prev);
                    if self.interarrival.len() <= b {
                        self.interarrival.resize(b + 1, 0);
                    }
                    self.interarrival[b] += 1;
                }
                self.prev_trap = Some(cycle);
                self.open_trap = Some(cycle);
            }
            TraceEvent::DecompressStart { .. } | TraceEvent::ICacheFlush => {}
            TraceEvent::DecompressEnd { region, evicted, .. } => {
                let delta = self.close_trap(cycle);
                if let Some(e) = evicted {
                    self.close_residency(e, cycle);
                    self.region(e).evictions += 1;
                }
                let row = self.region(region);
                row.decompressions += 1;
                row.decomp_cycles += delta;
                self.resident_since.entry(region).or_insert(cycle);
            }
            TraceEvent::CacheHit { region, .. } => {
                let delta = self.close_trap(cycle);
                let row = self.region(region);
                row.hits += 1;
                row.hit_cycles += delta;
            }
            TraceEvent::StubCreate { site, .. } | TraceEvent::StubHit { site, .. } => {
                let delta = self.close_trap(cycle);
                let row = self.site(site);
                if matches!(event, TraceEvent::StubCreate { .. }) {
                    row.creates += 1;
                } else {
                    row.reuses += 1;
                }
                row.cycles += delta;
                self.region((site >> 16) as u16).stub_cycles += delta;
            }
            TraceEvent::StubFree { site, .. } => {
                self.site(site).frees += 1;
            }
            _ => {}
        }
    }
}

/// The finished attribution tables (see [`Attribution`]).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AttributionReport {
    /// Per-region totals, ordered by region index.
    pub regions: Vec<RegionRow>,
    /// Per-call-site totals, ordered by tag word.
    pub sites: Vec<SiteRow>,
    /// Trap inter-arrival histogram; see [`Attribution`] for bucket bounds.
    pub interarrival: Vec<u64>,
    /// Trap totals by kind.
    pub traps: TrapCounts,
    /// Service cycles attributed to some region or call site.
    pub attributed_cycles: u64,
    /// The cycle stamp the report was closed at.
    pub end_cycle: u64,
}

impl AttributionReport {
    /// The `top` regions by total attributed cycles, most expensive first.
    pub fn top_regions(&self, top: usize) -> Vec<&RegionRow> {
        let mut rows: Vec<&RegionRow> = self.regions.iter().collect();
        rows.sort_by_key(|r| std::cmp::Reverse((r.total_cycles(), r.region)));
        rows.truncate(top);
        rows
    }

    fn to_json(&self) -> Json {
        obj(vec![
            (
                "regions",
                Json::Arr(
                    self.regions
                        .iter()
                        .map(|r| {
                            obj(vec![
                                ("region", int(r.region as u64)),
                                ("decompressions", int(r.decompressions)),
                                ("hits", int(r.hits)),
                                ("evictions", int(r.evictions)),
                                ("decomp_cycles", int(r.decomp_cycles)),
                                ("hit_cycles", int(r.hit_cycles)),
                                ("stub_cycles", int(r.stub_cycles)),
                                ("residency_cycles", int(r.residency_cycles)),
                                ("residency_intervals", int(r.residency_intervals)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "sites",
                Json::Arr(
                    self.sites
                        .iter()
                        .map(|s| {
                            obj(vec![
                                ("site", int(s.site as u64)),
                                ("creates", int(s.creates)),
                                ("reuses", int(s.reuses)),
                                ("frees", int(s.frees)),
                                ("cycles", int(s.cycles)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "trap_interarrival",
                Json::Arr(self.interarrival.iter().map(|&n| int(n)).collect()),
            ),
            (
                "traps",
                obj(vec![
                    ("create_stub", int(self.traps.create_stub)),
                    ("entry", int(self.traps.entry)),
                    ("restore", int(self.traps.restore)),
                ]),
            ),
            ("attributed_cycles", int(self.attributed_cycles)),
            ("end_cycle", int(self.end_cycle)),
        ])
    }

    fn from_json(v: &Json) -> Result<AttributionReport, String> {
        let req = |j: &Json, key: &str| -> Result<u64, String> {
            j.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("attribution: missing or bad \"{key}\""))
        };
        let mut report = AttributionReport::default();
        for r in v.get("regions").and_then(Json::as_arr).unwrap_or(&[]) {
            report.regions.push(RegionRow {
                region: narrow(req(r, "region")?, "region")?,
                decompressions: req(r, "decompressions")?,
                hits: req(r, "hits")?,
                evictions: req(r, "evictions")?,
                decomp_cycles: req(r, "decomp_cycles")?,
                hit_cycles: req(r, "hit_cycles")?,
                stub_cycles: req(r, "stub_cycles")?,
                residency_cycles: req(r, "residency_cycles")?,
                residency_intervals: req(r, "residency_intervals")?,
            });
        }
        for s in v.get("sites").and_then(Json::as_arr).unwrap_or(&[]) {
            report.sites.push(SiteRow {
                site: narrow(req(s, "site")?, "site")?,
                creates: req(s, "creates")?,
                reuses: req(s, "reuses")?,
                frees: req(s, "frees")?,
                cycles: req(s, "cycles")?,
            });
        }
        for b in v.get("trap_interarrival").and_then(Json::as_arr).unwrap_or(&[]) {
            report
                .interarrival
                .push(b.as_u64().ok_or("attribution: bad histogram bucket")?);
        }
        if let Some(t) = v.get("traps") {
            report.traps.create_stub = req(t, "create_stub")?;
            report.traps.entry = req(t, "entry")?;
            report.traps.restore = req(t, "restore")?;
        }
        report.attributed_cycles = req(v, "attributed_cycles")?;
        report.end_cycle = req(v, "end_cycle")?;
        Ok(report)
    }
}

/// A [`TraceSink`] fanning events out to every consumer one run can want:
/// a JSONL line buffer (`--trace`), [`Attribution`] (`--report` /
/// `--metrics-json`), a hierarchical span builder (`--spans`), and a
/// buffer-slot residency timeline (sample attribution for `--samples`).
#[derive(Debug, Clone, Default)]
pub struct Recorder {
    /// The JSONL buffer, if line output was requested.
    pub ring: Option<JsonlRing>,
    /// The attribution sink.
    pub attribution: Attribution,
    /// Cycle-domain span building, if span output was requested.
    pub spans: Option<crate::monitor::SpanBuilder>,
    /// Slot-residency tracking, if sample attribution was requested.
    pub timeline: Option<crate::monitor::SlotTimeline>,
}

impl Recorder {
    /// A recorder that attributes but keeps no lines.
    pub fn attribution_only() -> Recorder {
        Recorder::default()
    }

    /// A recorder that also buffers every event as a JSONL line.
    pub fn with_ring(ring: JsonlRing) -> Recorder {
        Recorder {
            ring: Some(ring),
            ..Recorder::default()
        }
    }
}

impl TraceSink for Recorder {
    fn emit(&mut self, cycle: u64, event: &TraceEvent) {
        if let Some(ring) = self.ring.as_mut() {
            ring.emit(cycle, event);
        }
        self.attribution.emit(cycle, event);
        if let Some(spans) = self.spans.as_mut() {
            spans.emit(cycle, event);
        }
        if let Some(timeline) = self.timeline.as_mut() {
            timeline.emit(cycle, event);
        }
    }
}

/// A clonable handle to a shared [`Recorder`].
///
/// The pipeline takes sinks by `Box<dyn TraceSink>`, which would strand the
/// recorded data inside the runtime; a `SharedRecorder` solves this by
/// handing the pipeline a clone while the caller keeps its handle and
/// extracts the recorder afterwards with [`SharedRecorder::take`].
#[derive(Debug, Clone, Default)]
pub struct SharedRecorder(Rc<RefCell<Recorder>>);

impl SharedRecorder {
    /// Wraps a recorder in a shared handle.
    pub fn new(recorder: Recorder) -> SharedRecorder {
        SharedRecorder(Rc::new(RefCell::new(recorder)))
    }

    /// A boxed clone of this handle, ready for
    /// [`crate::pipeline::run_squashed_traced`].
    pub fn sink(&self) -> Box<dyn TraceSink> {
        Box::new(self.clone())
    }

    /// Extracts the recorder. Cheap (no clone) once every other handle has
    /// been dropped — which is the normal case, since the pipeline drops the
    /// runtime (and its boxed handle) before returning.
    pub fn take(self) -> Recorder {
        match Rc::try_unwrap(self.0) {
            Ok(cell) => cell.into_inner(),
            Err(rc) => rc.borrow().clone(),
        }
    }
}

impl TraceSink for SharedRecorder {
    fn emit(&mut self, cycle: u64, event: &TraceEvent) {
        self.0.borrow_mut().emit(cycle, event);
    }
}

/// One pipeline stage's record in owned, serializable form (the telemetry
/// face of [`StageStats`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct StageRecord {
    /// Stage name.
    pub name: String,
    /// Wall-clock nanoseconds the stage took.
    pub wall_ns: u64,
    /// Items the stage processed.
    pub items: u64,
    /// Size of the stage's primary output, in bytes.
    pub output_bytes: u64,
    /// Unit qualifier for `items` / `output_bytes`.
    pub note: String,
}

impl From<&StageStats> for StageRecord {
    fn from(s: &StageStats) -> StageRecord {
        StageRecord {
            name: s.name.to_string(),
            wall_ns: s.wall.as_nanos() as u64,
            items: s.items as u64,
            output_bytes: s.output_bytes,
            note: s.note.to_string(),
        }
    }
}

/// Per-run metrics of one program execution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct RunMetrics {
    /// Exit status.
    pub status: i64,
    /// Guest instructions executed.
    pub instructions: u64,
    /// Total simulated cycles.
    pub cycles: u64,
    /// Bytes the program wrote to its output stream.
    pub output_bytes: u64,
}

/// One machine-check fault tally: how many faults of one kind a run (or a
/// fault-injection sweep) observed. `kind` is [`crate::FaultKind::name`]'s
/// snake_case string so the schema does not depend on the Rust enum layout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultCount {
    /// Fault kind name (`"region_checksum"`, `"truncated_stream"`, ...).
    pub kind: String,
    /// Occurrences.
    pub count: u64,
}

/// The unified telemetry report: everything the system counts, in one
/// document with a stable JSON schema (see `DESIGN.md` §12).
///
/// Every section is optional so one type serves both producers: `squashc
/// --metrics-json` fills `stages`, `squashrun --metrics-json` fills `run` /
/// `runtime` / `icache` and, when tracing, `attribution`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Telemetry {
    /// What was measured (an image path, workload name, ...).
    pub name: String,
    /// Execution metrics, if a program was run.
    pub run: Option<RunMetrics>,
    /// Runtime decompressor counters, if a squashed program was run.
    pub runtime: Option<RuntimeStats>,
    /// Instruction-cache counters, if the model was enabled.
    pub icache: Option<ICacheStats>,
    /// Compile-pipeline stage records, if squashing was observed.
    pub stages: Vec<StageRecord>,
    /// Per-region attribution, if a trace sink was attached.
    pub attribution: Option<AttributionReport>,
    /// Machine-check faults by kind, if any were observed (a faulting
    /// `squashrun` emits exactly one; harnesses may aggregate more).
    pub faults: Vec<FaultCount>,
    /// How many run documents were folded into this one by
    /// [`Telemetry::merge`]. `0` means an ordinary single-run document (the
    /// field is omitted from its JSON form); merged fleets carry the count so
    /// retune provenance can record how much evidence produced an image.
    pub docs: u64,
    /// Trace events the bounded JSONL ring (`--trace-last N`) discarded.
    /// `0` — also what every pre-existing document parses as — means either
    /// "nothing dropped" or "no bounded ring attached"; nonzero warns the
    /// consumer that the trace file is a tail, not the whole run.
    pub trace_drops: u64,
    /// Samples the bounded sampling profiler discarded once its buffer
    /// filled (`squashrun --sample-every` with `--sample-max`). Same
    /// additive-schema contract as `trace_drops`: `0` parses from (and
    /// writes as) an absent field, so old documents are unaffected; nonzero
    /// means the flame data is a prefix, not the whole run. Merge sums, so
    /// a fleet document keeps per-tenant drops attributable when the
    /// per-tenant documents are kept alongside it.
    pub sampler_drops: u64,
}

impl Telemetry {
    /// Cycle coverage: `(attributed, charged, untracked)` service cycles.
    /// `untracked` is whatever part of the runtime's charge the attribution
    /// tables cannot explain — 0 in practice, surfaced rather than hidden.
    pub fn coverage(&self) -> (u64, u64, u64) {
        let charged = self.runtime.map_or(0, |r| r.cycles_charged);
        let attributed = self
            .attribution
            .as_ref()
            .map_or(0, |a| a.attributed_cycles)
            .min(charged);
        (attributed, charged, charged - attributed)
    }

    /// Folds a fleet of run documents into one aggregate document (what
    /// `squashc --retune a.json --retune b.json` feeds the retuner).
    ///
    /// Counters sum (saturating, so forged documents cannot overflow);
    /// high-water marks (`max_live_stubs`, `end_cycle`) and the exit status
    /// take the maximum; attribution rows merge by region index / site tag;
    /// stage records merge by stage name; fault tallies merge by kind; names
    /// are deduplicated, sorted and joined with `+`. Every rule is symmetric,
    /// so the result is independent of document order (asserted by
    /// `tests/determinism.rs`). An empty slice merges to the default
    /// document.
    pub fn merge(docs: &[Telemetry]) -> Telemetry {
        fn sat(acc: &mut u64, n: u64) {
            *acc = acc.saturating_add(n);
        }
        let mut names: std::collections::BTreeSet<&str> = std::collections::BTreeSet::new();
        let mut stages: BTreeMap<String, StageRecord> = BTreeMap::new();
        let mut faults: BTreeMap<String, u64> = BTreeMap::new();
        let mut regions: BTreeMap<u16, RegionRow> = BTreeMap::new();
        let mut sites: BTreeMap<u32, SiteRow> = BTreeMap::new();
        let mut attr: Option<AttributionReport> = None;
        let mut out = Telemetry::default();
        for d in docs {
            if !d.name.is_empty() {
                names.insert(&d.name);
            }
            // A previously-merged input counts for the documents behind it.
            sat(&mut out.docs, d.docs.max(1));
            sat(&mut out.trace_drops, d.trace_drops);
            sat(&mut out.sampler_drops, d.sampler_drops);
            if let Some(run) = d.run {
                match &mut out.run {
                    None => out.run = Some(run),
                    Some(acc) => {
                        acc.status = acc.status.max(run.status);
                        sat(&mut acc.instructions, run.instructions);
                        sat(&mut acc.cycles, run.cycles);
                        sat(&mut acc.output_bytes, run.output_bytes);
                    }
                }
            }
            if let Some(rt) = d.runtime {
                match &mut out.runtime {
                    None => out.runtime = Some(rt),
                    Some(acc) => {
                        sat(&mut acc.decompressions, rt.decompressions);
                        sat(&mut acc.skipped, rt.skipped);
                        sat(&mut acc.stub_hits, rt.stub_hits);
                        sat(&mut acc.stub_allocs, rt.stub_allocs);
                        sat(&mut acc.restores, rt.restores);
                        acc.max_live_stubs = acc.max_live_stubs.max(rt.max_live_stubs);
                        sat(&mut acc.bits_read, rt.bits_read);
                        sat(&mut acc.insts_written, rt.insts_written);
                        sat(&mut acc.cycles_charged, rt.cycles_charged);
                        sat(&mut acc.hits, rt.hits);
                        sat(&mut acc.misses, rt.misses);
                        sat(&mut acc.evictions, rt.evictions);
                        sat(&mut acc.regions_verified, rt.regions_verified);
                        sat(&mut acc.checksum_cycles, rt.checksum_cycles);
                        sat(&mut acc.ref_fallbacks, rt.ref_fallbacks);
                    }
                }
            }
            if let Some(ic) = d.icache {
                match &mut out.icache {
                    None => out.icache = Some(ic),
                    Some(acc) => {
                        sat(&mut acc.hits, ic.hits);
                        sat(&mut acc.misses, ic.misses);
                        sat(&mut acc.flushes, ic.flushes);
                    }
                }
            }
            for s in &d.stages {
                match stages.get_mut(&s.name) {
                    None => {
                        stages.insert(s.name.clone(), s.clone());
                    }
                    Some(acc) => {
                        sat(&mut acc.wall_ns, s.wall_ns);
                        sat(&mut acc.items, s.items);
                        sat(&mut acc.output_bytes, s.output_bytes);
                        // Smallest non-empty note wins: symmetric, so merge
                        // order cannot change the result.
                        if !s.note.is_empty() && (acc.note.is_empty() || s.note < acc.note) {
                            acc.note = s.note.clone();
                        }
                    }
                }
            }
            for f in &d.faults {
                sat(faults.entry(f.kind.clone()).or_insert(0), f.count);
            }
            if let Some(a) = &d.attribution {
                let acc = attr.get_or_insert_with(AttributionReport::default);
                for r in &a.regions {
                    let row = regions
                        .entry(r.region)
                        .or_insert_with(|| RegionRow { region: r.region, ..RegionRow::default() });
                    sat(&mut row.decompressions, r.decompressions);
                    sat(&mut row.hits, r.hits);
                    sat(&mut row.evictions, r.evictions);
                    sat(&mut row.decomp_cycles, r.decomp_cycles);
                    sat(&mut row.hit_cycles, r.hit_cycles);
                    sat(&mut row.stub_cycles, r.stub_cycles);
                    sat(&mut row.residency_cycles, r.residency_cycles);
                    sat(&mut row.residency_intervals, r.residency_intervals);
                }
                for s in &a.sites {
                    let row = sites
                        .entry(s.site)
                        .or_insert_with(|| SiteRow { site: s.site, ..SiteRow::default() });
                    sat(&mut row.creates, s.creates);
                    sat(&mut row.reuses, s.reuses);
                    sat(&mut row.frees, s.frees);
                    sat(&mut row.cycles, s.cycles);
                }
                if acc.interarrival.len() < a.interarrival.len() {
                    acc.interarrival.resize(a.interarrival.len(), 0);
                }
                for (bucket, &n) in a.interarrival.iter().enumerate() {
                    sat(&mut acc.interarrival[bucket], n);
                }
                sat(&mut acc.traps.create_stub, a.traps.create_stub);
                sat(&mut acc.traps.entry, a.traps.entry);
                sat(&mut acc.traps.restore, a.traps.restore);
                sat(&mut acc.attributed_cycles, a.attributed_cycles);
                acc.end_cycle = acc.end_cycle.max(a.end_cycle);
            }
        }
        if let Some(mut a) = attr {
            a.regions = regions.into_values().collect();
            a.sites = sites.into_values().collect();
            out.attribution = Some(a);
        }
        out.stages = stages.into_values().collect();
        out.faults =
            faults.into_iter().map(|(kind, count)| FaultCount { kind, count }).collect();
        out.name = names.into_iter().collect::<Vec<_>>().join("+");
        out
    }

    /// Serializes the report to its stable JSON schema.
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("schema", int(SCHEMA_VERSION as u64)),
            ("name", Json::Str(self.name.clone())),
        ];
        if self.docs > 0 {
            fields.push(("docs", int(self.docs)));
        }
        // Additive (schema-compatible) field: omitted when zero, so every
        // pre-drop-count document and byte-for-byte golden test still holds.
        if self.trace_drops > 0 {
            fields.push(("trace_drops", int(self.trace_drops)));
        }
        if self.sampler_drops > 0 {
            fields.push(("sampler_drops", int(self.sampler_drops)));
        }
        if let Some(run) = self.run {
            fields.push((
                "run",
                obj(vec![
                    ("status", Json::Int(run.status)),
                    ("instructions", int(run.instructions)),
                    ("cycles", int(run.cycles)),
                    ("output_bytes", int(run.output_bytes)),
                ]),
            ));
        }
        if let Some(rt) = self.runtime {
            fields.push((
                "runtime",
                obj(vec![
                    ("decompressions", int(rt.decompressions)),
                    ("skipped", int(rt.skipped)),
                    ("stub_hits", int(rt.stub_hits)),
                    ("stub_allocs", int(rt.stub_allocs)),
                    ("restores", int(rt.restores)),
                    ("max_live_stubs", int(rt.max_live_stubs as u64)),
                    ("bits_read", int(rt.bits_read)),
                    ("insts_written", int(rt.insts_written)),
                    ("cycles_charged", int(rt.cycles_charged)),
                    ("hits", int(rt.hits)),
                    ("misses", int(rt.misses)),
                    ("evictions", int(rt.evictions)),
                    ("regions_verified", int(rt.regions_verified)),
                    ("checksum_cycles", int(rt.checksum_cycles)),
                    ("ref_fallbacks", int(rt.ref_fallbacks)),
                ]),
            ));
        }
        if let Some(ic) = self.icache {
            fields.push((
                "icache",
                obj(vec![
                    ("hits", int(ic.hits)),
                    ("misses", int(ic.misses)),
                    ("flushes", int(ic.flushes)),
                    ("miss_ratio", Json::Num(ic.miss_ratio())),
                ]),
            ));
        }
        if !self.stages.is_empty() {
            fields.push((
                "stages",
                Json::Arr(
                    self.stages
                        .iter()
                        .map(|s| {
                            obj(vec![
                                ("name", Json::Str(s.name.clone())),
                                ("wall_ns", int(s.wall_ns)),
                                ("items", int(s.items)),
                                ("output_bytes", int(s.output_bytes)),
                                ("note", Json::Str(s.note.clone())),
                            ])
                        })
                        .collect(),
                ),
            ));
        }
        if !self.faults.is_empty() {
            fields.push((
                "faults",
                Json::Arr(
                    self.faults
                        .iter()
                        .map(|f| {
                            obj(vec![
                                ("kind", Json::Str(f.kind.clone())),
                                ("count", int(f.count)),
                            ])
                        })
                        .collect(),
                ),
            ));
        }
        if let Some(attr) = &self.attribution {
            fields.push(("attribution", attr.to_json()));
            let (attributed, _, untracked) = self.coverage();
            fields.push((
                "coverage",
                obj(vec![
                    ("attributed_cycles", int(attributed)),
                    ("untracked_cycles", int(untracked)),
                ]),
            ));
        }
        obj(fields)
    }

    /// The JSON document as a string (what `--metrics-json` writes).
    pub fn to_json_string(&self) -> String {
        self.to_json().to_string()
    }

    /// Reads a report back from its JSON form.
    ///
    /// # Errors
    ///
    /// Fails on an unknown schema version or missing/mistyped fields.
    pub fn from_json(v: &Json) -> Result<Telemetry, String> {
        let schema = v
            .get("schema")
            .and_then(Json::as_u64)
            .ok_or("telemetry: missing \"schema\"")?;
        if schema > SCHEMA_VERSION as u64 {
            return Err(format!(
                "telemetry: schema {schema} is newer than supported ({SCHEMA_VERSION})"
            ));
        }
        let req = |j: &Json, key: &str| -> Result<u64, String> {
            j.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("telemetry: missing or bad \"{key}\""))
        };
        let opt = |j: &Json, key: &str| -> u64 { j.get(key).and_then(Json::as_u64).unwrap_or(0) };
        let mut t = Telemetry {
            name: v
                .get("name")
                .and_then(Json::as_str)
                .unwrap_or_default()
                .to_string(),
            // Absent in every pre-merge (schema 1) document and in plain
            // single-run documents: both read back as 0.
            docs: v.get("docs").and_then(Json::as_u64).unwrap_or(0),
            // Additive field: absent in old documents, reads as zero.
            trace_drops: v.get("trace_drops").and_then(Json::as_u64).unwrap_or(0),
            sampler_drops: v.get("sampler_drops").and_then(Json::as_u64).unwrap_or(0),
            ..Telemetry::default()
        };
        if let Some(run) = v.get("run") {
            t.run = Some(RunMetrics {
                status: run
                    .get("status")
                    .and_then(Json::as_i64)
                    .ok_or("telemetry: bad \"status\"")?,
                instructions: req(run, "instructions")?,
                cycles: req(run, "cycles")?,
                output_bytes: req(run, "output_bytes")?,
            });
        }
        if let Some(rt) = v.get("runtime") {
            t.runtime = Some(RuntimeStats {
                decompressions: req(rt, "decompressions")?,
                skipped: req(rt, "skipped")?,
                stub_hits: req(rt, "stub_hits")?,
                stub_allocs: req(rt, "stub_allocs")?,
                restores: req(rt, "restores")?,
                max_live_stubs: narrow(req(rt, "max_live_stubs")?, "max_live_stubs")?,
                bits_read: req(rt, "bits_read")?,
                insts_written: req(rt, "insts_written")?,
                cycles_charged: req(rt, "cycles_charged")?,
                hits: req(rt, "hits")?,
                misses: req(rt, "misses")?,
                evictions: req(rt, "evictions")?,
                // Integrity counters postdate the first schema; absent keys
                // read as zero so old documents still parse.
                regions_verified: opt(rt, "regions_verified"),
                checksum_cycles: opt(rt, "checksum_cycles"),
                ref_fallbacks: opt(rt, "ref_fallbacks"),
            });
        }
        if let Some(ic) = v.get("icache") {
            let mut stats = ICacheStats::default();
            stats.hits = req(ic, "hits")?;
            stats.misses = req(ic, "misses")?;
            stats.flushes = req(ic, "flushes")?;
            t.icache = Some(stats);
        }
        for s in v.get("stages").and_then(Json::as_arr).unwrap_or(&[]) {
            t.stages.push(StageRecord {
                name: s
                    .get("name")
                    .and_then(Json::as_str)
                    .ok_or("telemetry: stage without a name")?
                    .to_string(),
                wall_ns: req(s, "wall_ns")?,
                items: req(s, "items")?,
                output_bytes: req(s, "output_bytes")?,
                note: s
                    .get("note")
                    .and_then(Json::as_str)
                    .unwrap_or_default()
                    .to_string(),
            });
        }
        for f in v.get("faults").and_then(Json::as_arr).unwrap_or(&[]) {
            t.faults.push(FaultCount {
                kind: f
                    .get("kind")
                    .and_then(Json::as_str)
                    .ok_or("telemetry: fault without a kind")?
                    .to_string(),
                count: req(f, "count")?,
            });
        }
        if let Some(attr) = v.get("attribution") {
            t.attribution = Some(AttributionReport::from_json(attr)?);
        }
        Ok(t)
    }

    /// Renders the human-readable attribution report (`squashrun --report`):
    /// the per-region table, the top regions by decompression cost, the trap
    /// inter-arrival histogram, and the coverage line.
    pub fn report(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        if self.trace_drops > 0 {
            let _ = writeln!(
                out,
                "trace ring dropped {} oldest events (trace is a tail, not the whole run)",
                self.trace_drops
            );
        }
        if self.sampler_drops > 0 {
            let _ = writeln!(
                out,
                "sampler dropped {} samples past its buffer (flame data is a prefix, not the whole run)",
                self.sampler_drops
            );
        }
        let Some(attr) = &self.attribution else {
            out.push_str("no attribution data (run with tracing enabled)\n");
            return out;
        };
        let _ = writeln!(out, "Per-region attribution:");
        let _ = writeln!(
            out,
            "{:>7} {:>8} {:>6} {:>6} {:>12} {:>9} {:>9} {:>13} {:>6}",
            "region",
            "decomps",
            "hits",
            "evict",
            "decomp cyc",
            "hit cyc",
            "stub cyc",
            "resident cyc",
            "spans"
        );
        for r in &attr.regions {
            let _ = writeln!(
                out,
                "{:>7} {:>8} {:>6} {:>6} {:>12} {:>9} {:>9} {:>13} {:>6}",
                r.region,
                r.decompressions,
                r.hits,
                r.evictions,
                r.decomp_cycles,
                r.hit_cycles,
                r.stub_cycles,
                r.residency_cycles,
                r.residency_intervals
            );
        }
        let top = attr.top_regions(10);
        if !top.is_empty() {
            let _ = writeln!(out, "\nTop regions by attributed cycles:");
            for (i, r) in top.iter().enumerate() {
                let _ = writeln!(
                    out,
                    "{:>3}. region {:<5} {:>12} cycles ({} decompressions)",
                    i + 1,
                    r.region,
                    r.total_cycles(),
                    r.decompressions
                );
            }
        }
        let _ = writeln!(
            out,
            "\nTraps: {} total ({} create_stub, {} entry, {} restore)",
            attr.traps.total(),
            attr.traps.create_stub,
            attr.traps.entry,
            attr.traps.restore
        );
        if !attr.interarrival.is_empty() {
            let _ = writeln!(out, "Trap inter-arrival (cycles between traps):");
            let max = attr.interarrival.iter().copied().max().unwrap_or(1).max(1);
            for (i, &count) in attr.interarrival.iter().enumerate() {
                if count == 0 {
                    continue;
                }
                let label = match i {
                    0 => "0".to_string(),
                    i => format!("[2^{}, 2^{})", i - 1, i),
                };
                // Widened to u128: `count * 40` overflows u64 for the huge
                // counters fleet-merged documents can carry. `count <= max`
                // keeps the quotient in 1..=40; `.min(40)` guards forged
                // documents where it does not.
                let width = (count as u128 * 40).div_ceil(max as u128).min(40) as usize;
                let bar = "#".repeat(width);
                let _ = writeln!(out, "{label:>14} {count:>8} {bar}");
            }
        }
        let (attributed, charged, untracked) = self.coverage();
        let pct = if charged == 0 {
            100.0
        } else {
            100.0 * attributed as f64 / charged as f64
        };
        let _ = writeln!(
            out,
            "\nAttribution coverage: {attributed} / {charged} service cycles ({pct:.2}%), \
             untracked: {untracked}"
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_round_trips_values() {
        let v = obj(vec![
            ("a", Json::Int(-3)),
            ("big", Json::Int(i64::MAX)),
            ("f", Json::Num(1.5)),
            ("whole", Json::Num(2.0)),
            ("s", Json::Str("he said \"hi\"\n\ttab".into())),
            ("arr", Json::Arr(vec![Json::Null, Json::Bool(true), Json::Int(0)])),
            ("empty", Json::Arr(vec![])),
            ("nested", obj(vec![("x", Json::Int(1))])),
        ]);
        let text = v.to_string();
        let back = json::parse(&text).expect("parse");
        assert_eq!(back, v, "document: {text}");
        // Int/Num distinction survives: whole-valued floats stay Num.
        assert_eq!(back.get("whole"), Some(&Json::Num(2.0)));
        assert_eq!(back.get("big").and_then(Json::as_i64), Some(i64::MAX));
    }

    #[test]
    fn json_parse_rejects_garbage() {
        for bad in ["", "{", "[1,", "{\"a\" 1}", "truu", "1 2", "\"unterminated"] {
            assert!(json::parse(bad).is_err(), "{bad:?} should fail");
        }
        assert!(json::parse(" {\"k\": [1, 2.5, null]} ").is_ok());
    }

    #[test]
    fn bucket_bounds() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
    }

    /// Replay a synthetic event stream and check the tables, bracketing
    /// deltas, residency accounting and histogram.
    #[test]
    fn attribution_folds_a_scripted_stream() {
        let mut a = Attribution::new();
        let trap = |kind| TraceEvent::ServiceTrap { kind, pc: 0x8000, ra: 0 };
        // Trap at 100, region 2 decompressed by 1300 (charge 1200).
        a.emit(100, &trap(TrapKind::Entry));
        a.emit(100, &TraceEvent::DecompressStart { region: 2 });
        a.emit(100, &TraceEvent::ICacheFlush);
        a.emit(
            1300,
            &TraceEvent::DecompressEnd { region: 2, bits: 10, insts: 4, slot: 0, evicted: None },
        );
        // Trap at 2000 (inter-arrival 1900 → bucket 11), hit on region 2.
        a.emit(2000, &trap(TrapKind::Entry));
        a.emit(2050, &TraceEvent::CacheHit { region: 2, slot: 0 });
        // CreateStub trap at 3000 from region 2 (site tag 2<<16|8).
        a.emit(3000, &trap(TrapKind::CreateStub));
        a.emit(3030, &TraceEvent::StubCreate { site: (2 << 16) | 8, live: 1 });
        // Restore trap at 4000: stub freed, region 5 replaces region 2.
        a.emit(4000, &trap(TrapKind::Restore));
        a.emit(4000, &TraceEvent::StubFree { site: (2 << 16) | 8, live: 0 });
        a.emit(
            5000,
            &TraceEvent::DecompressEnd {
                region: 5,
                bits: 9,
                insts: 3,
                slot: 0,
                evicted: Some(2),
            },
        );
        let report = a.finish(6000);

        assert_eq!(report.traps.total(), 4);
        assert_eq!(
            (report.traps.entry, report.traps.create_stub, report.traps.restore),
            (2, 1, 1)
        );
        assert_eq!(report.attributed_cycles, 1200 + 50 + 30 + 1000);

        let r2 = report.regions.iter().find(|r| r.region == 2).unwrap();
        assert_eq!(r2.decompressions, 1);
        assert_eq!(r2.hits, 1);
        assert_eq!(r2.evictions, 1);
        assert_eq!(r2.decomp_cycles, 1200);
        assert_eq!(r2.hit_cycles, 50);
        assert_eq!(r2.stub_cycles, 30, "stub charge flows to the owning region");
        assert_eq!(r2.residency_cycles, 5000 - 1300, "resident from end to eviction");
        assert_eq!(r2.residency_intervals, 1);

        let r5 = report.regions.iter().find(|r| r.region == 5).unwrap();
        assert_eq!(r5.residency_cycles, 6000 - 5000, "open interval closed by finish");
        assert_eq!(r5.residency_intervals, 1);

        assert_eq!(report.sites.len(), 1);
        let site = &report.sites[0];
        assert_eq!(site.region(), 2);
        assert_eq!((site.creates, site.reuses, site.frees, site.cycles), (1, 0, 1, 30));

        // Histogram: deltas 1900, 1000, 1000 → buckets 11, 10, 10.
        assert_eq!(report.interarrival[11], 1);
        assert_eq!(report.interarrival[10], 2);
        assert_eq!(report.interarrival.iter().sum::<u64>(), 3);
    }

    #[test]
    fn telemetry_json_round_trips() {
        let runtime = RuntimeStats {
            decompressions: 7,
            cycles_charged: 12345,
            hits: 3,
            misses: 7,
            regions_verified: 7,
            checksum_cycles: 640,
            ref_fallbacks: 1,
            ..RuntimeStats::default()
        };
        // ICacheStats is #[non_exhaustive] in another crate, so it cannot be
        // built with a struct literal here — assign fields instead.
        #[allow(clippy::field_reassign_with_default)]
        let icache = {
            let mut s = ICacheStats::default();
            s.hits = 900;
            s.misses = 100;
            s.flushes = 7;
            s
        };
        let mut attribution = Attribution::new();
        attribution.emit(
            10,
            &TraceEvent::ServiceTrap { kind: TrapKind::Entry, pc: 0x8000, ra: 0 },
        );
        attribution.emit(
            500,
            &TraceEvent::DecompressEnd { region: 1, bits: 80, insts: 9, slot: 0, evicted: None },
        );
        let t = Telemetry {
            name: "adpcm".into(),
            run: Some(RunMetrics {
                status: 0,
                instructions: 1_000_000,
                cycles: 1_234_567,
                output_bytes: 42,
            }),
            runtime: Some(runtime),
            icache: Some(icache),
            stages: vec![StageRecord {
                name: "encode".into(),
                wall_ns: 1_500_000,
                items: 12,
                output_bytes: 4096,
                note: "regions / blob bytes".into(),
            }],
            attribution: Some(attribution.finish(600)),
            faults: vec![
                FaultCount { kind: "region_checksum".into(), count: 2 },
                FaultCount { kind: "truncated_stream".into(), count: 1 },
            ],
            docs: 0,
            trace_drops: 0,
            sampler_drops: 0,
        };
        let text = t.to_json_string();
        let back = Telemetry::from_json(&json::parse(&text).expect("parse")).expect("from_json");
        assert_eq!(back, t, "document: {text}");
        // Spot-check stable schema keys.
        for key in [
            "\"schema\":2",
            "\"cycles_charged\":12345",
            "\"miss_ratio\":0.1",
            "\"wall_ns\":1500000",
            "\"attributed_cycles\":490",
            "\"regions_verified\"",
            "\"checksum_cycles\"",
            "\"ref_fallbacks\"",
            "\"kind\":\"region_checksum\"",
        ] {
            assert!(text.contains(key), "missing {key} in {text}");
        }
    }

    #[test]
    fn runtime_integrity_counters_default_to_zero_in_old_documents() {
        // A schema-1 document written before the integrity counters existed
        // must still parse, with the new counters reading as zero.
        let doc = "{\"schema\":1,\"name\":\"old\",\"runtime\":{\
                   \"decompressions\":1,\"skipped\":0,\"stub_hits\":0,\
                   \"stub_allocs\":0,\"restores\":0,\"max_live_stubs\":0,\
                   \"bits_read\":8,\"insts_written\":1,\"cycles_charged\":9,\
                   \"hits\":0,\"misses\":1,\"evictions\":0}}";
        let t = Telemetry::from_json(&json::parse(doc).unwrap()).unwrap();
        let rt = t.runtime.unwrap();
        assert_eq!(rt.regions_verified, 0);
        assert_eq!(rt.checksum_cycles, 0);
        assert_eq!(rt.ref_fallbacks, 0);
        assert!(t.faults.is_empty());
    }

    /// Narrowed fields (`region: u16`, `site: u32`, `max_live_stubs: usize`)
    /// must reject out-of-range values with a typed error, never truncate —
    /// a forged region id that wrapped would alias another region's counters
    /// once retune indexes by it.
    #[test]
    fn out_of_range_narrow_fields_are_rejected() {
        let attr_doc = |region: u64, site: u64| {
            format!(
                "{{\"schema\":2,\"name\":\"x\",\"attribution\":{{\"regions\":[{{\
                 \"region\":{region},\"decompressions\":1,\"hits\":0,\"evictions\":0,\
                 \"decomp_cycles\":1,\"hit_cycles\":0,\"stub_cycles\":0,\
                 \"residency_cycles\":0,\"residency_intervals\":0}}],\"sites\":[{{\
                 \"site\":{site},\"creates\":1,\"reuses\":0,\"frees\":0,\"cycles\":1}}],\
                 \"attributed_cycles\":1,\"end_cycle\":1}}}}"
            )
        };
        // In range on both axes: parses.
        let ok = Telemetry::from_json(&json::parse(&attr_doc(65535, 4294967295)).unwrap());
        assert!(ok.is_ok(), "{ok:?}");
        // One past each bound: typed errors naming the field.
        let err = Telemetry::from_json(&json::parse(&attr_doc(65536, 0)).unwrap()).unwrap_err();
        assert!(err.contains("\"region\" out of range"), "{err}");
        let err =
            Telemetry::from_json(&json::parse(&attr_doc(0, 4294967296)).unwrap()).unwrap_err();
        assert!(err.contains("\"site\" out of range"), "{err}");
        // max_live_stubs > usize::MAX cannot be represented on 64-bit hosts,
        // but the checked path is the same helper; prove it is wired by
        // round-tripping a legitimate value through it.
        let doc = "{\"schema\":2,\"name\":\"x\",\"runtime\":{\
                   \"decompressions\":0,\"skipped\":0,\"stub_hits\":0,\
                   \"stub_allocs\":0,\"restores\":0,\"max_live_stubs\":77,\
                   \"bits_read\":0,\"insts_written\":0,\"cycles_charged\":0,\
                   \"hits\":0,\"misses\":0,\"evictions\":0}}";
        let t = Telemetry::from_json(&json::parse(doc).unwrap()).unwrap();
        assert_eq!(t.runtime.unwrap().max_live_stubs, 77);
    }

    /// Near-`u64::MAX` histogram counters (a long fleet-merged run) must
    /// render without overflowing the `count * 40` bar arithmetic.
    #[test]
    fn report_histogram_survives_huge_counters() {
        let t = Telemetry {
            name: "fleet".into(),
            runtime: Some(RuntimeStats::default()),
            attribution: Some(AttributionReport {
                interarrival: vec![u64::MAX - 1, u64::MAX, 1],
                ..AttributionReport::default()
            }),
            ..Telemetry::default()
        };
        let rendered = t.report();
        let bars: Vec<&str> = rendered
            .lines()
            .filter(|l| l.trim_start().starts_with('[') || l.trim_start().starts_with("0 "))
            .collect();
        assert!(rendered.contains(&"#".repeat(40)), "full bucket renders 40 marks:\n{rendered}");
        for line in bars {
            let width = line.chars().filter(|&c| c == '#').count();
            assert!((1..=40).contains(&width), "bar width {width} out of range: {line}");
        }
    }

    #[test]
    fn merge_sums_counters_and_is_commutative() {
        let mk = |name: &str, cycles: u64, region: u16, status: i64| {
            let mut attribution = Attribution::new();
            attribution.emit(
                0,
                &TraceEvent::ServiceTrap { kind: TrapKind::Entry, pc: 0, ra: 0 },
            );
            attribution.emit(
                cycles,
                &TraceEvent::DecompressEnd { region, bits: 8, insts: 2, slot: 0, evicted: None },
            );
            Telemetry {
                name: name.into(),
                run: Some(RunMetrics {
                    status,
                    instructions: 100,
                    cycles,
                    output_bytes: 3,
                }),
                runtime: Some(RuntimeStats {
                    decompressions: 1,
                    cycles_charged: cycles,
                    max_live_stubs: (cycles / 100) as usize % 10,
                    ..RuntimeStats::default()
                }),
                stages: vec![StageRecord {
                    name: "encode".into(),
                    wall_ns: 10,
                    items: 2,
                    output_bytes: 64,
                    note: "regions".into(),
                }],
                faults: vec![FaultCount { kind: "region_checksum".into(), count: 1 }],
                attribution: Some(attribution.finish(cycles)),
                ..Telemetry::default()
            }
        };
        let a = mk("a", 500, 1, 0);
        let b = mk("b", 700, 1, 3);
        let c = mk("c", 900, 4, -1);
        let ab_c = Telemetry::merge(&[a.clone(), b.clone(), c.clone()]);
        let c_ba = Telemetry::merge(&[c, b, a]);
        assert_eq!(ab_c, c_ba, "merge must be order-independent");
        assert_eq!(ab_c.docs, 3);
        assert_eq!(ab_c.name, "a+b+c");
        let run = ab_c.run.unwrap();
        assert_eq!(run.cycles, 500 + 700 + 900);
        assert_eq!(run.status, 3, "worst status wins");
        let rt = ab_c.runtime.unwrap();
        assert_eq!(rt.decompressions, 3);
        assert_eq!(rt.max_live_stubs, 9, "high-water mark takes the max");
        let attr = ab_c.attribution.as_ref().unwrap();
        assert_eq!(attr.regions.len(), 2, "rows merged by region index");
        let r1 = attr.regions.iter().find(|r| r.region == 1).unwrap();
        assert_eq!(r1.decompressions, 2);
        assert_eq!(r1.decomp_cycles, 500 + 700);
        assert_eq!(attr.end_cycle, 900, "end_cycle is a high-water mark");
        assert_eq!(ab_c.stages.len(), 1);
        assert_eq!(ab_c.stages[0].items, 6);
        assert_eq!(ab_c.faults, vec![FaultCount { kind: "region_checksum".into(), count: 3 }]);
        // A merged document round-trips its own JSON, docs count included.
        let text = ab_c.to_json_string();
        assert!(text.contains("\"docs\":3"), "{text}");
        let back = Telemetry::from_json(&json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, ab_c);
        // Merging a merged document preserves the evidence count.
        let again = Telemetry::merge(&[ab_c, mk("d", 10, 0, 0)]);
        assert_eq!(again.docs, 4);
    }

    #[test]
    fn trace_drops_field_is_additive() {
        // Old documents (no trace_drops) parse as zero, a zero count is
        // omitted on write (so pre-PR9 golden docs stay byte-identical),
        // and a nonzero count round-trips, merges, and shows in the report.
        let old = json::parse("{\"schema\":2,\"name\":\"x\"}").unwrap();
        assert_eq!(Telemetry::from_json(&old).unwrap().trace_drops, 0);
        let zero = Telemetry { name: "x".into(), ..Telemetry::default() };
        assert!(!zero.to_json_string().contains("trace_drops"));
        let some = Telemetry { trace_drops: 7, ..zero.clone() };
        let text = some.to_json_string();
        assert!(text.contains("\"trace_drops\":7"), "{text}");
        let round = Telemetry::from_json(&json::parse(&text).unwrap()).unwrap();
        assert_eq!(round.trace_drops, 7);
        let merged = Telemetry::merge(&[some.clone(), some]);
        assert_eq!(merged.trace_drops, 14);
        let report = merged.report();
        assert!(report.contains("trace ring dropped 14"), "{report}");
        assert!(!zero.report().contains("trace ring"), "zero drops must stay quiet");
    }

    #[test]
    fn sampler_drops_field_is_additive() {
        // Same contract as trace_drops: absent parses as zero, zero writes
        // as absent (old golden documents stay byte-identical), nonzero
        // round-trips, merges by saturating sum, and shows in the report.
        let old = json::parse("{\"schema\":2,\"name\":\"x\"}").unwrap();
        assert_eq!(Telemetry::from_json(&old).unwrap().sampler_drops, 0);
        let zero = Telemetry { name: "x".into(), ..Telemetry::default() };
        assert!(!zero.to_json_string().contains("sampler_drops"));
        let some = Telemetry { sampler_drops: 5, ..zero.clone() };
        let text = some.to_json_string();
        assert!(text.contains("\"sampler_drops\":5"), "{text}");
        let round = Telemetry::from_json(&json::parse(&text).unwrap()).unwrap();
        assert_eq!(round.sampler_drops, 5);
        let merged = Telemetry::merge(&[some.clone(), some, Telemetry { sampler_drops: u64::MAX, ..Telemetry::default() }]);
        assert_eq!(merged.sampler_drops, u64::MAX, "merge saturates, never wraps");
        assert!(merged.report().contains("sampler dropped"), "{}", merged.report());
        assert!(!zero.report().contains("sampler dropped"), "zero drops must stay quiet");
    }

    #[test]
    fn newer_schema_is_rejected() {
        let doc = format!("{{\"schema\":{},\"name\":\"x\"}}", SCHEMA_VERSION + 1);
        let v = json::parse(&doc).unwrap();
        assert!(Telemetry::from_json(&v).is_err());
    }

    #[test]
    fn coverage_reports_untracked_remainder() {
        let runtime = RuntimeStats { cycles_charged: 1000, ..RuntimeStats::default() };
        let mut attribution = Attribution::new();
        attribution.emit(
            0,
            &TraceEvent::ServiceTrap { kind: TrapKind::Entry, pc: 0, ra: 0 },
        );
        attribution.emit(
            990,
            &TraceEvent::DecompressEnd { region: 0, bits: 1, insts: 1, slot: 0, evicted: None },
        );
        let t = Telemetry {
            name: String::new(),
            runtime: Some(runtime),
            attribution: Some(attribution.finish(990)),
            ..Telemetry::default()
        };
        assert_eq!(t.coverage(), (990, 1000, 10));
        let rendered = t.report();
        assert!(rendered.contains("untracked: 10"), "{rendered}");
        assert!(rendered.contains("99.00%"), "{rendered}");
    }

    #[test]
    fn shared_recorder_round_trip() {
        let shared = SharedRecorder::new(Recorder::with_ring(JsonlRing::unbounded()));
        let mut sink = shared.sink();
        sink.emit(5, &TraceEvent::DecompressStart { region: 1 });
        sink.emit(
            90,
            &TraceEvent::DecompressEnd { region: 1, bits: 2, insts: 1, slot: 0, evicted: None },
        );
        drop(sink);
        let recorder = shared.take();
        assert_eq!(recorder.ring.as_ref().map(JsonlRing::len), Some(2));
        let report = recorder.attribution.finish(100);
        assert_eq!(report.regions.len(), 1);
        assert_eq!(report.regions[0].decompressions, 1);
    }
}
