//! Memory-footprint accounting (the cost model of paper §4).
//!
//! "When comparing the space usage of the original and compressed programs,
//! the latter must take into account the space occupied by the stubs, the
//! decompressor, the function offset table, the compressed code, the runtime
//! buffer, and the never-compressed original program code" (§2.1). Every
//! term below is measured from the actually emitted image.

use std::fmt;

/// Byte-exact breakdown of a squashed program's code footprint.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Footprint {
    /// Never-compressed code.
    pub never_compressed: u32,
    /// Entry stubs (2 words each).
    pub entry_stubs: u32,
    /// Compile-time restore stubs (3 words per call site; zero under the
    /// default runtime scheme).
    pub static_stubs: u32,
    /// The decompressor's resident code (configured constant).
    pub decompressor: u32,
    /// The decompressor's canonical-Huffman tables (measured).
    pub model_tables: u32,
    /// The function offset table (one word per region).
    pub offset_table: u32,
    /// The compressed code blob.
    pub compressed: u32,
    /// The restore-stub area (12 bytes per slot).
    pub stub_area: u32,
    /// The runtime decompression buffer.
    pub buffer: u32,
}

impl Footprint {
    /// Total footprint in bytes.
    pub fn total(&self) -> u32 {
        self.never_compressed
            + self.entry_stubs
            + self.static_stubs
            + self.decompressor
            + self.model_tables
            + self.offset_table
            + self.compressed
            + self.stub_area
            + self.buffer
    }

    /// Size reduction versus a baseline of `baseline_bytes`, as a fraction
    /// (0.137 = "13.7% smaller"). Negative when squashing *grew* the
    /// program.
    pub fn reduction_vs(&self, baseline_bytes: u32) -> f64 {
        1.0 - self.total() as f64 / baseline_bytes.max(1) as f64
    }
}

impl fmt::Display for Footprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "never-compressed code  {:>8} B", self.never_compressed)?;
        writeln!(f, "entry stubs            {:>8} B", self.entry_stubs)?;
        if self.static_stubs > 0 {
            writeln!(f, "compile-time stubs     {:>8} B", self.static_stubs)?;
        }
        writeln!(f, "decompressor           {:>8} B", self.decompressor)?;
        writeln!(f, "huffman tables         {:>8} B", self.model_tables)?;
        writeln!(f, "function offset table  {:>8} B", self.offset_table)?;
        writeln!(f, "compressed code        {:>8} B", self.compressed)?;
        writeln!(f, "restore-stub area      {:>8} B", self.stub_area)?;
        writeln!(f, "runtime buffer         {:>8} B", self.buffer)?;
        write!(f, "total                  {:>8} B", self.total())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_sums_all_parts() {
        let fp = Footprint {
            never_compressed: 100,
            entry_stubs: 16,
            static_stubs: 36,
            decompressor: 2048,
            model_tables: 50,
            offset_table: 8,
            compressed: 77,
            stub_area: 768,
            buffer: 512,
        };
        assert_eq!(fp.total(), 100 + 16 + 36 + 2048 + 50 + 8 + 77 + 768 + 512);
    }

    #[test]
    fn reduction_sign_convention() {
        let fp = Footprint {
            never_compressed: 900,
            ..Footprint::default()
        };
        assert!((fp.reduction_vs(1000) - 0.1).abs() < 1e-9);
        assert!(fp.reduction_vs(800) < 0.0);
    }

    #[test]
    fn display_mentions_every_part() {
        let text = Footprint::default().to_string();
        for part in ["never-compressed", "entry stubs", "decompressor", "offset table",
                     "compressed", "stub area", "buffer", "total"] {
            assert!(text.contains(part), "missing {part}: {text}");
        }
    }
}
