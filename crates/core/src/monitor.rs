//! Bridges from the system's native telemetry (trace events, stage records,
//! telemetry documents, pc samples) to the `squash-obs` encoders.
//!
//! Four bridges, one per observability surface (`DESIGN.md` §16):
//!
//! * [`SpanBuilder`] — a [`TraceSink`] folding the runtime decompressor's
//!   event stream into hierarchical cycle-domain spans: every service trap
//!   opens a span that its terminal event (decompress end, cache hit, stub
//!   create/hit) closes, with decompress and payload-verify brackets nested
//!   inside. `squashrun --spans` writes the result as Chrome trace JSON.
//! * [`stage_spans`] — lays the compile pipeline's [`StageRecord`]s end to
//!   end as wall-ns spans (the stages run sequentially), for
//!   `squashc --spans`.
//! * [`SlotTimeline`] + [`collapse_samples`] — joins the VM's deterministic
//!   pc samples against buffer-slot residency (which region occupied the
//!   slot at each cycle) and the image's address map, producing
//!   flamegraph-compatible collapsed stacks for `squashrun --samples`.
//! * [`registry`] — mirrors a [`Telemetry`] document onto a metrics
//!   [`Registry`] (counters, gauges, and the trap inter-arrival histogram)
//!   without touching the document's own JSON schema; `squashmon --prom`
//!   renders the Prometheus exposition.
//!
//! Everything here consumes already-recorded data, so the zero-perturbation
//! contract (`tests/differential.rs`) is inherited from the emitters.

use squash_obs::{Histogram, Registry, SpanId, SpanLog, Stacks};
use squash_vm::{Sample, TraceEvent, TraceSink};

use crate::runtime::RuntimeConfig;
use crate::telemetry::{StageRecord, Telemetry};

/// Folds runtime trace events into a cycle-domain [`SpanLog`].
///
/// Span hierarchy (by time containment, which is how Perfetto nests):
/// `service/<trap-kind>` spans from each [`TraceEvent::ServiceTrap`] to its
/// terminal event; `decompress/r<N>` and `verify/r<N>` spans nested inside;
/// `stub_free` and `icache_flush` as instant markers.
#[derive(Debug, Clone, Default)]
pub struct SpanBuilder {
    log: SpanLog,
    service: Option<SpanId>,
    decompress: Option<SpanId>,
    verify: Option<SpanId>,
}

impl SpanBuilder {
    /// An empty builder (cycle clock).
    pub fn new() -> SpanBuilder {
        SpanBuilder { log: SpanLog::new("cycles"), ..SpanBuilder::default() }
    }

    /// Closes the open service span (the trap's terminal event arrived).
    fn close_service(&mut self, cycle: u64) {
        if let Some(id) = self.service.take() {
            self.log.end(id, cycle);
        }
    }

    /// The finished span log. Spans left open by a faulted run are closed
    /// at the highest stamp seen when rendered.
    pub fn finish(self) -> SpanLog {
        self.log
    }
}

impl TraceSink for SpanBuilder {
    fn emit(&mut self, cycle: u64, event: &TraceEvent) {
        match *event {
            TraceEvent::ServiceTrap { kind, pc, ra } => {
                // A trap while another appears open means the previous one's
                // terminal event was lost; close it rather than leak.
                self.close_service(cycle);
                let id = self.log.begin(format!("service/{}", kind.name()), "service", cycle);
                self.log.arg(id, "pc", pc as u64);
                self.log.arg(id, "ra", ra as u64);
                self.service = Some(id);
            }
            TraceEvent::DecompressStart { region } => {
                self.decompress =
                    Some(self.log.begin(format!("decompress/r{region}"), "decompress", cycle));
            }
            TraceEvent::VerifyStart { region } => {
                self.verify = Some(self.log.begin(format!("verify/r{region}"), "verify", cycle));
            }
            TraceEvent::VerifyEnd { bytes, .. } => {
                if let Some(id) = self.verify.take() {
                    self.log.arg(id, "bytes", bytes);
                    self.log.end(id, cycle);
                }
            }
            TraceEvent::DecompressEnd { bits, insts, slot, .. } => {
                if let Some(id) = self.decompress.take() {
                    self.log.arg(id, "bits", bits);
                    self.log.arg(id, "insts", insts);
                    self.log.arg(id, "slot", slot as u64);
                    self.log.end(id, cycle);
                }
                self.close_service(cycle);
            }
            TraceEvent::CacheHit { region, slot } => {
                if let Some(id) = self.service {
                    self.log.arg(id, "region", region as u64);
                    self.log.arg(id, "slot", slot as u64);
                }
                self.close_service(cycle);
            }
            TraceEvent::StubCreate { site, .. } | TraceEvent::StubHit { site, .. } => {
                if let Some(id) = self.service {
                    self.log.arg(id, "site", site as u64);
                }
                self.close_service(cycle);
            }
            TraceEvent::StubFree { .. } => self.log.instant("stub_free", "runtime", cycle),
            TraceEvent::ICacheFlush => self.log.instant("icache_flush", "runtime", cycle),
            _ => {}
        }
    }
}

/// Lays the compile pipeline's stage records end to end as one wall-ns
/// [`SpanLog`] (the stages run sequentially, so cumulative wall time is the
/// timeline).
pub fn stage_spans(stages: &[StageRecord]) -> SpanLog {
    let mut log = SpanLog::new("ns");
    let mut ts = 0u64;
    for s in stages {
        let id = log.begin(format!("stage/{}", s.name), "stage", ts);
        log.arg(id, "items", s.items);
        log.arg(id, "output_bytes", s.output_bytes);
        ts = ts.saturating_add(s.wall_ns);
        log.end(id, ts);
    }
    log
}

/// The image's address map, for classifying a sampled pc into an area.
#[derive(Debug, Clone)]
pub struct AreaMap {
    decomp: std::ops::Range<u32>,
    offsets: std::ops::Range<u32>,
    stubs: std::ops::Range<u32>,
    buffer_base: u32,
    buffer_bytes: u32,
    slots: usize,
}

/// Where a sampled pc fell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Area {
    /// Never-compressed code (and entry stubs) below the runtime areas.
    Text,
    /// The decompressor trap window / body or its offset table.
    Decompressor,
    /// The restore-stub area.
    RestoreStubs,
    /// Buffer slot `k` of the decompressed-region cache.
    Buffer(usize),
}

impl AreaMap {
    /// Builds the map from a squashed image's runtime configuration.
    pub fn from_runtime(cfg: &RuntimeConfig) -> AreaMap {
        AreaMap {
            decomp: cfg.decomp_base..cfg.decomp_base + cfg.decomp_bytes,
            offsets: cfg.offset_table_addr
                ..cfg.offset_table_addr + 4 * cfg.regions as u32,
            stubs: cfg.stub_base
                ..cfg.stub_base + crate::layout::STUB_SLOT_BYTES * cfg.stub_slots as u32,
            buffer_base: cfg.buffer_base,
            buffer_bytes: cfg.buffer_bytes,
            slots: cfg.cache_slots,
        }
    }

    /// Buffer slots in the map.
    pub fn slots(&self) -> usize {
        self.slots
    }

    /// Classifies a pc.
    pub fn area(&self, pc: u32) -> Area {
        let buffer =
            self.buffer_base..self.buffer_base + self.buffer_bytes * self.slots as u32;
        if buffer.contains(&pc) && self.buffer_bytes > 0 {
            Area::Buffer(((pc - self.buffer_base) / self.buffer_bytes) as usize)
        } else if self.decomp.contains(&pc) || self.offsets.contains(&pc) {
            Area::Decompressor
        } else if self.stubs.contains(&pc) {
            Area::RestoreStubs
        } else {
            Area::Text
        }
    }
}

/// A [`TraceSink`] recording which region each buffer slot held over time
/// (one entry per decompression, cycle-ordered). Joined against pc samples
/// by [`collapse_samples`] to name the region a buffer-area sample landed
/// in.
#[derive(Debug, Clone, Default)]
pub struct SlotTimeline {
    /// `(cycle, slot, region)` — slot contents change at these stamps.
    events: Vec<(u64, usize, u16)>,
}

impl SlotTimeline {
    /// An empty timeline.
    pub fn new() -> SlotTimeline {
        SlotTimeline::default()
    }

    /// Residency changes recorded.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no decompression was observed.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

impl TraceSink for SlotTimeline {
    fn emit(&mut self, cycle: u64, event: &TraceEvent) {
        if let TraceEvent::DecompressEnd { region, slot, .. } = *event {
            self.events.push((cycle, slot, region));
        }
    }
}

/// Joins deterministic pc samples with the address map and slot-residency
/// timeline into collapsed stacks: `program;text`, `program;decompressor`,
/// `program;restore_stubs`, and `program;buffer;region_<N>` (or
/// `…;buffer;empty` before any fill). Samples and timeline are both
/// cycle-ordered, so the join is a single merge pass.
pub fn collapse_samples(
    program: &str,
    samples: &[Sample],
    map: &AreaMap,
    timeline: &SlotTimeline,
) -> Stacks {
    let mut stacks = Stacks::new();
    let mut resident: Vec<Option<u16>> = vec![None; map.slots()];
    let mut next_event = 0usize;
    for s in samples {
        while let Some(&(cycle, slot, region)) = timeline.events.get(next_event) {
            if cycle > s.cycle {
                break;
            }
            if let Some(r) = resident.get_mut(slot) {
                *r = Some(region);
            }
            next_event += 1;
        }
        match map.area(s.pc) {
            Area::Text => stacks.add(&[program, "text"], 1),
            Area::Decompressor => stacks.add(&[program, "decompressor"], 1),
            Area::RestoreStubs => stacks.add(&[program, "restore_stubs"], 1),
            Area::Buffer(k) => {
                let frame = match resident.get(k).copied().flatten() {
                    Some(r) => format!("region_{r}"),
                    None => "empty".to_string(),
                };
                stacks.add(&[program, "buffer", &frame], 1);
            }
        }
    }
    stacks
}

/// Mirrors a telemetry document onto a metrics [`Registry`]: every counter
/// the document carries becomes a Prometheus-exposable metric, the trap
/// inter-arrival log2 buckets become a histogram, and the document's name
/// rides on a `squash_info` gauge label. The telemetry JSON schema itself is
/// untouched — this is a read-only projection.
pub fn registry(t: &Telemetry) -> Registry {
    let mut r = Registry::new();
    r.set_gauge(
        "squash_info",
        "What was measured; value is always 1",
        &[("name", &t.name)],
        1.0,
    );
    if t.docs > 0 {
        r.set_gauge(
            "squash_telemetry_docs",
            "Run documents folded into this aggregate",
            &[],
            t.docs as f64,
        );
    }
    if t.trace_drops > 0 {
        r.add_counter(
            "squash_trace_drops_total",
            "Events the bounded trace ring discarded",
            &[],
            t.trace_drops,
        );
    }
    if t.sampler_drops > 0 {
        r.add_counter(
            "squash_sampler_drops_total",
            "Samples the bounded sampling profiler discarded",
            &[],
            t.sampler_drops,
        );
    }
    if let Some(run) = t.run {
        r.set_gauge("squash_run_status", "Guest exit status", &[], run.status as f64);
        r.add_counter(
            "squash_run_instructions_total",
            "Instructions executed",
            &[],
            run.instructions,
        );
        r.add_counter(
            "squash_run_cycles_total",
            "Cycles consumed (instructions + service charges)",
            &[],
            run.cycles,
        );
        r.add_counter(
            "squash_run_output_bytes_total",
            "Bytes the guest wrote",
            &[],
            run.output_bytes,
        );
    }
    if let Some(rt) = t.runtime {
        let help = "Runtime decompressor counter";
        for (name, v) in [
            ("squash_runtime_decompressions_total", rt.decompressions),
            ("squash_runtime_skipped_total", rt.skipped),
            ("squash_runtime_stub_hits_total", rt.stub_hits),
            ("squash_runtime_stub_allocs_total", rt.stub_allocs),
            ("squash_runtime_restores_total", rt.restores),
            ("squash_runtime_bits_read_total", rt.bits_read),
            ("squash_runtime_insts_written_total", rt.insts_written),
            ("squash_runtime_cycles_charged_total", rt.cycles_charged),
            ("squash_runtime_hits_total", rt.hits),
            ("squash_runtime_misses_total", rt.misses),
            ("squash_runtime_evictions_total", rt.evictions),
            ("squash_runtime_regions_verified_total", rt.regions_verified),
            ("squash_runtime_checksum_cycles_total", rt.checksum_cycles),
            ("squash_runtime_ref_fallbacks_total", rt.ref_fallbacks),
        ] {
            r.add_counter(name, help, &[], v);
        }
        r.set_gauge(
            "squash_runtime_max_live_stubs",
            "High-water mark of live restore stubs",
            &[],
            rt.max_live_stubs as f64,
        );
    }
    if let Some(ic) = t.icache {
        r.add_counter("squash_icache_hits_total", "Instruction-cache hits", &[], ic.hits);
        r.add_counter("squash_icache_misses_total", "Instruction-cache misses", &[], ic.misses);
        r.add_counter("squash_icache_flushes_total", "Instruction-cache flushes", &[], ic.flushes);
        r.set_gauge("squash_icache_miss_ratio", "Miss ratio", &[], ic.miss_ratio());
    }
    for s in &t.stages {
        let labels: &[(&str, &str)] = &[("stage", &s.name)];
        r.add_counter("squash_stage_wall_ns_total", "Stage wall-clock", labels, s.wall_ns);
        r.add_counter("squash_stage_items_total", "Stage items processed", labels, s.items);
        r.add_counter(
            "squash_stage_output_bytes_total",
            "Stage artifact bytes",
            labels,
            s.output_bytes,
        );
    }
    for f in &t.faults {
        r.add_counter(
            "squash_faults_total",
            "Machine-check faults by kind",
            &[("kind", &f.kind)],
            f.count,
        );
    }
    if let Some(attr) = &t.attribution {
        for (kind, v) in [
            ("create_stub", attr.traps.create_stub),
            ("entry", attr.traps.entry),
            ("restore", attr.traps.restore),
        ] {
            r.add_counter("squash_traps_total", "Service traps by kind", &[("kind", kind)], v);
        }
        for row in &attr.regions {
            let region = row.region.to_string();
            let labels: &[(&str, &str)] = &[("region", &region)];
            r.add_counter(
                "squash_region_decompressions_total",
                "Decompressions per region",
                labels,
                row.decompressions,
            );
            r.add_counter(
                "squash_region_residency_cycles_total",
                "Cycles the region was buffer-resident",
                labels,
                row.residency_cycles,
            );
            for (kind, v) in [
                ("decomp", row.decomp_cycles),
                ("hit", row.hit_cycles),
                ("stub", row.stub_cycles),
            ] {
                r.add_counter(
                    "squash_region_cycles_total",
                    "Attributed service cycles per region",
                    &[("region", &region), ("kind", kind)],
                    v,
                );
            }
        }
        if !attr.interarrival.is_empty() {
            // The attribution buckets are log2: bucket 0 holds zero deltas,
            // bucket i ≥ 1 holds [2^(i-1), 2^i). Re-expose them under the
            // conservative upper bound 2^i (every delta in bucket i is
            // ≤ 2^i), with the sum estimated from bucket lower bounds —
            // the native buckets do not keep exact values.
            let n = attr.interarrival.len();
            let bounds: Vec<f64> = (0..n).map(|i| (1u64 << i) as f64).collect();
            let mut counts = attr.interarrival.clone();
            counts.push(0); // +Inf: the top bucket is already the maximum seen
            let sum: f64 = attr
                .interarrival
                .iter()
                .enumerate()
                .skip(1)
                .map(|(i, &c)| c as f64 * (1u64 << (i - 1)) as f64)
                .sum();
            r.set_histogram(
                "squash_trap_interarrival_cycles",
                "Cycles between consecutive service traps (log2 buckets; bounds are conservative)",
                &[],
                Histogram::from_parts(&bounds, counts, sum),
            );
        }
    }
    r
}

/// Mirrors a fleet metrics snapshot onto a [`Registry`]: per-tenant request
/// counters (labelled by tenant and outcome), per-tenant simulated work,
/// the shared decode-cache counters, the quarantine ledger, and the image
/// store's backoff count. Like [`registry`], a read-only projection.
pub fn fleet_registry(m: &crate::fleet::FleetMetrics) -> Registry {
    let mut r = Registry::new();
    for t in &m.tenants {
        let labels: &[(&str, &str)] = &[("tenant", &t.tenant)];
        r.add_counter("squashd_requests_total", "Requests submitted", labels, t.submitted);
        for (outcome, v) in [
            ("ok", t.ok),
            ("machine_check", t.faults),
            ("shed", t.shed),
            ("quarantined", t.quarantine_rejected),
            ("load_error", t.load_errors),
            ("run_error", t.run_errors),
            ("internal", t.internal_errors),
        ] {
            if v > 0 {
                r.add_counter(
                    "squashd_outcomes_total",
                    "Request outcomes by tenant",
                    &[("tenant", &t.tenant), ("outcome", outcome)],
                    v,
                );
            }
        }
        if t.deadline_faults > 0 {
            r.add_counter(
                "squashd_deadline_faults_total",
                "Cycle-budget deadline machine checks",
                labels,
                t.deadline_faults,
            );
        }
        r.add_counter("squashd_tenant_cycles_total", "Simulated cycles per tenant", labels, t.cycles);
        r.add_counter(
            "squashd_tenant_instructions_total",
            "Instructions per tenant",
            labels,
            t.instructions,
        );
    }
    let c = &m.cache;
    for (name, v) in [
        ("squashd_cache_hits_total", c.hits),
        ("squashd_cache_misses_total", c.misses),
        ("squashd_cache_evictions_total", c.evictions),
        ("squashd_cache_bypasses_total", c.bypasses),
        ("squashd_cache_acquires_total", c.acquires),
        ("squashd_cache_releases_total", c.releases),
    ] {
        r.add_counter(name, "Shared decode-cache counter", &[], v);
    }
    r.set_gauge(
        "squashd_cache_live_entries",
        "Entries resident in the shared decode cache",
        &[],
        c.live_entries as f64,
    );
    for (image, faults, quarantined) in &m.quarantine {
        r.add_counter(
            "squashd_image_faults_total",
            "Machine checks recorded against an image",
            &[("image", image)],
            *faults as u64,
        );
        r.set_gauge(
            "squashd_image_quarantined",
            "1 when the image is quarantined",
            &[("image", image)],
            if *quarantined { 1.0 } else { 0.0 },
        );
    }
    if m.load_retries > 0 {
        r.add_counter(
            "squashd_load_retries_total",
            "Backoff sleeps taken loading images",
            &[],
            m.load_retries,
        );
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use squash_vm::TrapKind;

    fn emit_all(sink: &mut dyn TraceSink, seq: &[(u64, TraceEvent)]) {
        for (cycle, e) in seq {
            sink.emit(*cycle, e);
        }
    }

    #[test]
    fn span_builder_brackets_traps_and_nests_decompress() {
        let mut b = SpanBuilder::new();
        emit_all(
            &mut b,
            &[
                (100, TraceEvent::ServiceTrap { kind: TrapKind::Entry, pc: 0x8000, ra: 0x2000 }),
                (100, TraceEvent::DecompressStart { region: 3 }),
                (100, TraceEvent::VerifyStart { region: 3 }),
                (140, TraceEvent::VerifyEnd { region: 3, bytes: 40 }),
                (150, TraceEvent::ICacheFlush),
                (
                    200,
                    TraceEvent::DecompressEnd {
                        region: 3,
                        bits: 800,
                        insts: 25,
                        slot: 0,
                        evicted: None,
                    },
                ),
                (300, TraceEvent::ServiceTrap { kind: TrapKind::Entry, pc: 0x8000, ra: 0x2000 }),
                (310, TraceEvent::CacheHit { region: 3, slot: 0 }),
            ],
        );
        let log = b.finish();
        assert_eq!(log.open(), 0);
        assert_eq!(
            log.spans(),
            vec![
                ("service/entry", 100, 100),
                ("decompress/r3", 100, 100),
                ("verify/r3", 100, 40),
                ("service/entry", 300, 10),
            ]
        );
        let json = log.to_chrome_json();
        assert!(json.contains("\"clock\":\"cycles\""), "{json}");
        assert!(json.contains("icache_flush"), "{json}");
    }

    #[test]
    fn stage_spans_are_cumulative() {
        let stages = vec![
            StageRecord { name: "plan".into(), wall_ns: 100, items: 4, ..Default::default() },
            StageRecord { name: "encode".into(), wall_ns: 250, items: 4, ..Default::default() },
        ];
        let log = stage_spans(&stages);
        assert_eq!(log.clock(), "ns");
        assert_eq!(
            log.spans(),
            vec![("stage/plan", 0, 100), ("stage/encode", 100, 250)]
        );
    }

    fn test_map() -> AreaMap {
        AreaMap {
            decomp: 0x8000..0x8400,
            offsets: 0x8400..0x8410,
            stubs: 0x8410..0x8500,
            buffer_base: 0x9000,
            buffer_bytes: 0x100,
            slots: 2,
        }
    }

    #[test]
    fn area_classification() {
        let m = test_map();
        assert_eq!(m.area(0x1000), Area::Text);
        assert_eq!(m.area(0x8004), Area::Decompressor);
        assert_eq!(m.area(0x8404), Area::Decompressor);
        assert_eq!(m.area(0x8420), Area::RestoreStubs);
        assert_eq!(m.area(0x9004), Area::Buffer(0));
        assert_eq!(m.area(0x9104), Area::Buffer(1));
        assert_eq!(m.area(0x9200), Area::Text); // past the last slot
    }

    #[test]
    fn collapse_joins_samples_with_residency() {
        let map = test_map();
        let mut tl = SlotTimeline::new();
        tl.emit(
            50,
            &TraceEvent::DecompressEnd { region: 7, bits: 1, insts: 1, slot: 0, evicted: None },
        );
        tl.emit(
            150,
            &TraceEvent::DecompressEnd { region: 9, bits: 1, insts: 1, slot: 0, evicted: Some(7) },
        );
        let samples = [
            Sample { cycle: 10, pc: 0x9010 },  // buffer before any fill
            Sample { cycle: 60, pc: 0x9010 },  // region 7 resident
            Sample { cycle: 160, pc: 0x9010 }, // region 9 resident
            Sample { cycle: 170, pc: 0x1000 }, // text
            Sample { cycle: 180, pc: 0x8000 }, // decompressor
        ];
        let stacks = collapse_samples("prog", &samples, &map, &tl);
        assert_eq!(
            stacks.render(),
            "prog;buffer;empty 1\nprog;buffer;region_7 1\nprog;buffer;region_9 1\n\
             prog;decompressor 1\nprog;text 1\n"
        );
        assert_eq!(stacks.total(), samples.len() as u64);
    }

    #[test]
    fn registry_mirrors_counters_and_histogram() {
        use crate::telemetry::{AttributionReport, RunMetrics, TrapCounts};
        let t = Telemetry {
            name: "img.sqsh".into(),
            run: Some(RunMetrics {
                status: 0,
                instructions: 100,
                cycles: 150,
                output_bytes: 5,
            }),
            trace_drops: 3,
            attribution: Some(AttributionReport {
                traps: TrapCounts { create_stub: 1, entry: 2, restore: 3 },
                interarrival: vec![4, 5, 6],
                ..Default::default()
            }),
            ..Default::default()
        };
        let r = registry(&t);
        let text = r.to_prometheus();
        assert!(text.contains("squash_info{name=\"img.sqsh\"} 1"), "{text}");
        assert!(text.contains("squash_run_cycles_total 150"), "{text}");
        assert!(text.contains("squash_trace_drops_total 3"), "{text}");
        assert!(text.contains("squash_traps_total{kind=\"entry\"} 2"), "{text}");
        // Histogram: bounds 1,2,4 cumulative 4,9,15, +Inf 15 == _count.
        assert!(text.contains("squash_trap_interarrival_cycles_bucket{le=\"1\"} 4"), "{text}");
        assert!(text.contains("squash_trap_interarrival_cycles_bucket{le=\"4\"} 15"), "{text}");
        assert!(
            text.contains("squash_trap_interarrival_cycles_bucket{le=\"+Inf\"} 15"),
            "{text}"
        );
        assert!(text.contains("squash_trap_interarrival_cycles_count 15"), "{text}");
    }

    #[test]
    fn empty_document_mirrors_to_info_only() {
        let r = registry(&Telemetry::default());
        let text = r.to_prometheus();
        assert!(text.contains("squash_info{name=\"\"} 1"), "{text}");
        assert!(!text.contains("squash_run_"), "{text}");
    }
}
