//! Handling of indirect jumps through jump tables (paper §6.2).
//!
//! A compressed region's code runs at buffer addresses, so an indirect jump
//! whose table holds original block addresses cannot be compressed as-is.
//! The paper lists two remedies — update the table's addresses, or
//! *unswitch* the jump into a chain of conditional branches — and a
//! fallback: exclude the affected blocks when the table's extent is
//! unknown. All three are implemented here as [`JumpTableMode`]s.
//!
//! Unswitching materialises each candidate target's address into the
//! reserved `at` register (dead across control transfers by the code
//! generator's contract) and compares it with the loaded table entry, so
//! behaviour is preserved no matter where the linker ultimately places the
//! targets (entry stubs for compressed blocks, plain addresses otherwise).

use squash_cfg::{Block, BlockReloc, DataItem, FuncId, JumpTarget, PInst, Program, SymRef, Term};
use squash_isa::{BraOp, Inst, MemOp, Reg};

use crate::{BlockProfile, JumpTableMode};

/// What the jump-table pass did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JumpTableStats {
    /// Indirect jumps through known tables found.
    pub known_tables: usize,
    /// Indirect jumps with unknown extent found.
    pub unknown_tables: usize,
    /// Jumps rewritten into compare chains.
    pub unswitched: usize,
    /// Chain blocks added by unswitching.
    pub chain_blocks: usize,
}

/// Applies the selected jump-table strategy, returning the (possibly
/// transformed) program, a profile extended to cover any new blocks, and
/// statistics.
#[allow(clippy::needless_range_loop)]
pub fn apply(
    program: &Program,
    profile: &BlockProfile,
    mode: JumpTableMode,
) -> (Program, BlockProfile, JumpTableStats) {
    let mut stats = JumpTableStats::default();
    for f in &program.funcs {
        for b in &f.blocks {
            match &b.term {
                Term::IndirectJump { table: Some(_), .. } => stats.known_tables += 1,
                Term::IndirectJump { table: None, .. } => stats.unknown_tables += 1,
                _ => {}
            }
        }
    }
    if mode != JumpTableMode::Unswitch || stats.known_tables == 0 {
        return (program.clone(), profile.clone(), stats);
    }
    let mut p = program.clone();
    let mut freq = profile.freq.clone();
    for fi in 0..p.funcs.len() {
        let fid = FuncId(fi);
        for bi in 0..p.funcs[fi].blocks.len() {
            let Term::IndirectJump {
                rb,
                table: Some(di),
            } = p.funcs[fi].blocks[bi].term.clone()
            else {
                continue;
            };
            // Distinct targets of the table, in first-occurrence order.
            let mut targets: Vec<usize> = Vec::new();
            for item in &p.data[di].items {
                if let DataItem::Addr(squash_cfg::AddrTarget::Block(owner, t)) = item {
                    if *owner == fid && !targets.contains(t) {
                        targets.push(*t);
                    }
                }
            }
            if targets.is_empty() {
                continue;
            }
            stats.unswitched += 1;
            let block_freq = freq[fi][bi];
            if targets.len() == 1 {
                p.funcs[fi].blocks[bi].term = Term::Jump {
                    target: JumpTarget::Block(targets[0]),
                };
                continue;
            }
            // Chain blocks: compare `rb` against each target's address.
            let first_chain = p.funcs[fi].blocks.len();
            for (i, &t) in targets.iter().enumerate() {
                let is_last = i + 1 == targets.len();
                let block = if is_last {
                    Block {
                        labels: vec![],
                        insts: vec![],
                        term: Term::Jump {
                            target: JumpTarget::Block(t),
                        },
                    }
                } else {
                    Block {
                        labels: vec![],
                        insts: vec![
                            PInst {
                                inst: Inst::Mem {
                                    op: MemOp::Ldah,
                                    ra: Reg::AT,
                                    rb: Reg::ZERO,
                                    disp: 0,
                                },
                                reloc: Some(BlockReloc::Hi(SymRef::Block(fid, t))),
                                call: None,
                            },
                            PInst {
                                inst: Inst::Mem {
                                    op: MemOp::Lda,
                                    ra: Reg::AT,
                                    rb: Reg::AT,
                                    disp: 0,
                                },
                                reloc: Some(BlockReloc::Lo(SymRef::Block(fid, t))),
                                call: None,
                            },
                            PInst::plain(Inst::Opr {
                                func: squash_isa::AluOp::Cmpeq,
                                ra: rb,
                                rb: Reg::AT,
                                rc: Reg::AT,
                            }),
                        ],
                        term: Term::Cond {
                            op: BraOp::Bne,
                            ra: Reg::AT,
                            target: JumpTarget::Block(t),
                            fall: first_chain + i + 1,
                        },
                    }
                };
                p.funcs[fi].blocks.push(block);
                freq[fi].push(block_freq);
                stats.chain_blocks += 1;
            }
            p.funcs[fi].blocks[bi].term = Term::Fall { next: first_chain };
        }
    }
    (
        p,
        BlockProfile {
            freq,
            total_instructions: profile.total_instructions,
        },
        stats,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline;

    const SWITCHY: &str = r#"
int dispatch(int x) {
    switch (x) {
        case 0: return 10;
        case 1: return 20;
        case 2: return 30;
        case 3: return 40;
        case 4: return 50;
    }
    return -1;
}
int main() { return dispatch(getb() - '0'); }
"#;

    #[test]
    fn retarget_leaves_program_unchanged() {
        let p = minicc::build_program(&[SWITCHY]).unwrap();
        let prof = pipeline::profile(&p, &[b"2".to_vec()]).unwrap();
        let (q, _, stats) = apply(&p, &prof, JumpTableMode::Retarget);
        assert_eq!(q, p);
        assert_eq!(stats.known_tables, 1);
        assert_eq!(stats.unswitched, 0);
    }

    #[test]
    fn unswitch_removes_indirect_jumps() {
        let p = minicc::build_program(&[SWITCHY]).unwrap();
        let prof = pipeline::profile(&p, &[b"2".to_vec()]).unwrap();
        let (q, prof2, stats) = apply(&p, &prof, JumpTableMode::Unswitch);
        assert_eq!(stats.unswitched, 1);
        assert!(stats.chain_blocks >= 4);
        let indirects = q
            .funcs
            .iter()
            .flat_map(|f| &f.blocks)
            .filter(|b| matches!(b.term, Term::IndirectJump { table: Some(_), .. }))
            .count();
        assert_eq!(indirects, 0);
        // Profile covers the new blocks.
        for (fi, f) in q.funcs.iter().enumerate() {
            assert_eq!(prof2.freq[fi].len(), f.blocks.len());
        }
    }

    #[test]
    fn unswitched_program_behaves_identically() {
        let p = minicc::build_program(&[SWITCHY]).unwrap();
        let prof = pipeline::profile(&p, &[b"2".to_vec()]).unwrap();
        let (q, _, _) = apply(&p, &prof, JumpTableMode::Unswitch);
        for input in [b"0", b"1", b"2", b"3", b"4", b"9"] {
            let a = pipeline::run_original(&p, input).unwrap();
            let b = pipeline::run_original(&q, input).unwrap();
            assert_eq!(a.status, b.status, "input {input:?}");
        }
    }
}
