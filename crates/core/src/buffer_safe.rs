//! Buffer-safe analysis (paper §6.1).
//!
//! A callee is *buffer-safe* when neither it nor anything it may transfer
//! control to can invoke the decompressor. Calls from compressed code to
//! buffer-safe callees need no restore stub and no expansion: the runtime
//! buffer provably survives the call.
//!
//! The paper seeds the analysis with regions that are "clearly not
//! buffer-safe" — compressed regions, and regions with indirect calls whose
//! targets may be unsafe — and propagates unsafety backwards along control
//! transfers until a fixpoint. We run the same fixpoint at function
//! granularity (a function is unsafe as soon as any of its blocks is), which
//! is sound and matches how the optimization is consumed: per call site, by
//! callee.

use std::collections::HashSet;

use squash_cfg::{FuncId, JumpTarget, Program, Term};

use crate::regions::Region;

/// The set of buffer-safe functions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BufferSafety {
    safe: Vec<bool>,
}

impl BufferSafety {
    /// Whether calls to `f` can leave the runtime buffer untouched.
    pub fn is_safe(&self, f: FuncId) -> bool {
        self.safe[f.0]
    }

    /// Number of buffer-safe functions.
    pub fn count(&self) -> usize {
        self.safe.iter().filter(|&&s| s).count()
    }

    /// Fraction of all functions that are buffer-safe (the §6.1 statistic).
    pub fn fraction(&self) -> f64 {
        self.count() as f64 / self.safe.len().max(1) as f64
    }
}

/// Runs the analysis for a program partitioned by `regions`.
pub fn analyze(program: &Program, regions: &[Region]) -> BufferSafety {
    let n = program.funcs.len();
    // Functions owning at least one compressed block.
    let mut has_compressed = vec![false; n];
    for r in regions {
        for &(f, _) in &r.blocks {
            has_compressed[f.0] = true;
        }
    }
    // Seed: compressed functions and functions with indirect calls or
    // indirect jumps of unknown extent (their continuations are unknown).
    let mut unsafe_ = vec![false; n];
    for (fi, f) in program.funcs.iter().enumerate() {
        if has_compressed[fi] {
            unsafe_[fi] = true;
        }
        for b in &f.blocks {
            for pi in &b.insts {
                if let squash_isa::Inst::Jmp { ra, .. } = pi.inst {
                    if ra != squash_isa::Reg::ZERO {
                        unsafe_[fi] = true; // indirect call, unknown target
                    }
                }
            }
            if matches!(b.term, Term::IndirectJump { table: None, .. }) {
                unsafe_[fi] = true;
            }
        }
    }
    // Propagate backwards: a function that can transfer control into an
    // unsafe function is unsafe.
    let mut edges: Vec<HashSet<usize>> = vec![HashSet::new(); n]; // callee -> callers
    for (fi, f) in program.funcs.iter().enumerate() {
        for b in &f.blocks {
            for pi in &b.insts {
                if let Some(c) = pi.call {
                    edges[c.0].insert(fi);
                }
            }
            if let Term::Jump {
                target: JumpTarget::Func(g),
            }
            | Term::Cond {
                target: JumpTarget::Func(g),
                ..
            } = &b.term
            {
                edges[g.0].insert(fi);
            }
        }
    }
    let mut work: Vec<usize> = (0..n).filter(|&i| unsafe_[i]).collect();
    while let Some(callee) = work.pop() {
        for &caller in &edges[callee] {
            if !unsafe_[caller] {
                unsafe_[caller] = true;
                work.push(caller);
            }
        }
    }
    BufferSafety {
        safe: unsafe_.iter().map(|&u| !u).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn program() -> Program {
        minicc::build_program(&[r#"
            int leaf(int x) { return x * 2; }
            int wraps_leaf(int x) { return leaf(x) + 1; }
            int cold_fn(int x) { return x - 1; }
            int calls_cold(int x) { return cold_fn(x); }
            int main() { return wraps_leaf(getb()) + calls_cold(1); }
        "#])
        .unwrap()
    }

    fn region_over(program: &Program, name: &str) -> Region {
        let f = program.func_by_name(name).unwrap();
        Region {
            blocks: (0..program.func(f).blocks.len()).map(|b| (f, b)).collect(),
        }
    }

    #[test]
    fn compressed_functions_are_unsafe() {
        let p = program();
        let regions = vec![region_over(&p, "cold_fn")];
        let safety = analyze(&p, &regions);
        assert!(!safety.is_safe(p.func_by_name("cold_fn").unwrap()));
    }

    #[test]
    fn unsafety_propagates_to_callers() {
        let p = program();
        let regions = vec![region_over(&p, "cold_fn")];
        let safety = analyze(&p, &regions);
        assert!(!safety.is_safe(p.func_by_name("calls_cold").unwrap()));
        assert!(!safety.is_safe(p.func_by_name("main").unwrap()));
    }

    #[test]
    fn untouched_leaves_are_safe() {
        let p = program();
        let regions = vec![region_over(&p, "cold_fn")];
        let safety = analyze(&p, &regions);
        assert!(safety.is_safe(p.func_by_name("leaf").unwrap()));
        assert!(safety.is_safe(p.func_by_name("wraps_leaf").unwrap()));
        assert!(safety.count() >= 2);
        assert!(safety.fraction() > 0.0);
    }

    #[test]
    fn no_regions_means_everything_safe() {
        let p = program();
        let safety = analyze(&p, &[]);
        assert_eq!(safety.count(), p.funcs.len());
    }

    #[test]
    fn indirect_calls_poison_safety() {
        let src = r#"
.text
.func main
main:
    la   t0, vt
    ldl  t0, 0(t0)
    jsr  ra, (t0)
    li   a0, 0
    exit
.endfunc
.func pointee
pointee:
    ret
.endfunc
.data
vt: .word pointee
"#;
        let m = squash_isa::asm::assemble(src).unwrap();
        let p = squash_cfg::build::lower(&m).unwrap();
        let safety = analyze(&p, &[]);
        assert!(!safety.is_safe(p.func_by_name("main").unwrap()));
        assert!(safety.is_safe(p.func_by_name("pointee").unwrap()));
    }
}
