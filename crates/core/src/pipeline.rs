//! Profiling and run-and-compare helpers tying the whole system together.
//!
//! These are the operations the evaluation performs over and over: link and
//! run a program to collect a profile (the paper's *profiling input*), run
//! original and squashed programs on a *timing input*, and compare size and
//! cycles.

use squash_cfg::link::{self, LinkOptions};
use squash_cfg::Program;
use squash_vm::{ICacheConfig, ICacheStats, TraceSink, Vm};

use crate::layout::Squashed;
use crate::runtime::{RuntimeStats, SquashRuntime};
use crate::telemetry::{RunMetrics, Telemetry};
use crate::{err, BlockProfile, SquashError};

/// Outcome of one program run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunResult {
    /// Exit status.
    pub status: i64,
    /// Bytes written to the output stream.
    pub output: Vec<u8>,
    /// Instructions executed.
    pub instructions: u64,
    /// Cycles consumed (instructions plus decompression charges).
    pub cycles: u64,
    /// Runtime decompressor statistics (zeroed for original runs).
    pub runtime: RuntimeStats,
    /// Instruction-cache statistics, when the model was enabled.
    pub icache: Option<ICacheStats>,
}

impl RunResult {
    /// Starts a [`Telemetry`] report from this run's metrics: fills the
    /// `run`, `runtime` and `icache` sections; the caller adds stages or
    /// attribution if it has them.
    pub fn telemetry(&self, name: &str) -> Telemetry {
        Telemetry {
            name: name.to_string(),
            run: Some(RunMetrics {
                status: self.status,
                instructions: self.instructions,
                cycles: self.cycles,
                output_bytes: self.output.len() as u64,
            }),
            runtime: (self.runtime != RuntimeStats::default()).then_some(self.runtime),
            icache: self.icache,
            ..Telemetry::default()
        }
    }
}

/// Links and runs `program` on each input, merging per-PC counts into a
/// per-block [`BlockProfile`] (§5's execution profile).
///
/// # Errors
///
/// Fails if the program cannot be linked or faults during any run.
pub fn profile(program: &Program, inputs: &[Vec<u8>]) -> Result<BlockProfile, SquashError> {
    profile_jobs(program, inputs, 1)
}

/// [`profile`] with the runs fanned out over `jobs` worker threads.
/// Per-input profiles are merged in input order, and block counts are
/// commutative sums, so the result is identical for any `jobs`.
///
/// # Errors
///
/// Fails if the program cannot be linked or faults during any run.
pub fn profile_jobs(
    program: &Program,
    inputs: &[Vec<u8>],
    jobs: usize,
) -> Result<BlockProfile, SquashError> {
    let image = link::link(program, &LinkOptions::default())
        .map_err(|e| SquashError::msg(e.message))?;
    let image = &image;
    let profiles: Vec<Result<squash_vm::Profile, SquashError>> =
        crate::par::map_indexed(jobs, inputs.len(), |i| {
            let mut vm = Vm::new(image.min_mem_size(1 << 18));
            for (base, bytes) in image.segments() {
                vm.write_bytes(base, &bytes);
            }
            vm.set_pc(image.entry);
            vm.set_input(inputs[i].clone());
            vm.enable_profile(image.text_base, image.text_words());
            vm.run().map_err(|e| SquashError::msg(format!("profiling run failed: {e}")))?;
            Ok(vm.take_profile().expect("profiling enabled"))
        });
    let mut merged: Option<squash_vm::Profile> = None;
    for p in profiles {
        let p = p?;
        match &mut merged {
            Some(m) => m.merge(&p),
            None => merged = Some(p),
        }
    }
    let Some(p) = merged else {
        return err("no profiling inputs given");
    };
    let freq = link::block_frequencies(image, program, &|pc| p.count_at(pc));
    Ok(BlockProfile {
        freq,
        total_instructions: p.total(),
    })
}

/// Links and runs the original (unsquashed) program on `input`.
///
/// # Errors
///
/// Fails on link errors or machine faults.
pub fn run_original(program: &Program, input: &[u8]) -> Result<RunResult, SquashError> {
    run_original_with(program, input, None)
}

/// [`run_original`] with an optional instruction-cache model.
///
/// # Errors
///
/// Fails on link errors or machine faults.
pub fn run_original_with(
    program: &Program,
    input: &[u8],
    icache: Option<ICacheConfig>,
) -> Result<RunResult, SquashError> {
    let image = link::link(program, &LinkOptions::default())
        .map_err(|e| SquashError::msg(e.message))?;
    let mut vm = Vm::new(image.min_mem_size(1 << 18));
    for (base, bytes) in image.segments() {
        vm.write_bytes(base, &bytes);
    }
    vm.set_pc(image.entry);
    vm.set_input(input.to_vec());
    if let Some(cfg) = icache {
        vm.enable_icache(cfg);
    }
    let out = vm.run().map_err(|e| SquashError::msg(format!("original run failed: {e}")))?;
    let icache_stats = vm.icache_stats();
    Ok(RunResult {
        status: out.status,
        output: vm.take_output(),
        instructions: out.instructions,
        cycles: out.cycles,
        runtime: RuntimeStats::default(),
        icache: icache_stats,
    })
}

/// Runs a squashed program on `input` with the decompressor service
/// attached.
///
/// # Errors
///
/// Fails on machine faults or runtime-decompressor errors (corrupt blob,
/// stub exhaustion).
pub fn run_squashed(squashed: &Squashed, input: &[u8]) -> Result<RunResult, SquashError> {
    run_squashed_with(squashed, input, None)
}

/// [`run_squashed`] with an optional instruction-cache model; the runtime
/// decompressor flushes it after every decompression, as in the paper.
///
/// # Errors
///
/// Fails on machine faults or runtime-decompressor errors.
pub fn run_squashed_with(
    squashed: &Squashed,
    input: &[u8],
    icache: Option<ICacheConfig>,
) -> Result<RunResult, SquashError> {
    run_squashed_traced(squashed, input, icache, None)
}

/// [`run_squashed_with`] with an optional trace sink attached to the runtime
/// decompressor. Every runtime event (traps, decompressions, cache hits,
/// stub churn, flushes) is emitted into the sink, stamped with the simulated
/// cycle counter. Tracing is purely observational: the run's cycle counts
/// are identical with and without a sink (`tests/differential.rs` asserts
/// this on every workload). Use a [`crate::telemetry::SharedRecorder`] to
/// keep a handle on the recorded data.
///
/// # Errors
///
/// Fails on machine faults or runtime-decompressor errors.
pub fn run_squashed_traced(
    squashed: &Squashed,
    input: &[u8],
    icache: Option<ICacheConfig>,
    sink: Option<Box<dyn TraceSink>>,
) -> Result<RunResult, SquashError> {
    run_squashed_observed(squashed, input, icache, sink, None).map(|(run, _)| run)
}

/// [`run_squashed_traced`] plus an optional deterministic sampling profiler:
/// with `sample_every = Some(n)`, the VM records the executing pc at every
/// n-th simulated cycle and the filled [`squash_vm::Sampler`] is returned
/// alongside the run. Sampling shares tracing's zero-perturbation contract —
/// it reads the cycle counter, never advances it — and
/// `tests/differential.rs` asserts byte- and cycle-identity on every
/// workload with both attached. Collapse the samples with
/// [`crate::monitor::collapse_samples`].
///
/// # Errors
///
/// Fails on machine faults or runtime-decompressor errors.
pub fn run_squashed_observed(
    squashed: &Squashed,
    input: &[u8],
    icache: Option<ICacheConfig>,
    sink: Option<Box<dyn TraceSink>>,
    sample_every: Option<u64>,
) -> Result<(RunResult, Option<squash_vm::Sampler>), SquashError> {
    run_squashed_inner(squashed, input, icache, sink, sample_every, None, None)
}

/// The fleet entry point: [`run_squashed`] under a cycle-budget deadline
/// and (optionally) a shared decode-cache handle.
///
/// The deadline is enforced inside the VM step loop and surfaces as a typed
/// `deadline_exceeded` machine check (`SquashError::fault`), never a hang;
/// a budget the run does not reach is zero-perturbation. The cache handle
/// shares *host-side* decode work between instances of the same image —
/// simulated cycle charges and per-instance runtime stats are unchanged, so
/// a fleet run is byte/cycle-identical to a solo one (`tests/fleet.rs`).
///
/// # Errors
///
/// Fails on machine faults (including `DeadlineExceeded`) or
/// runtime-decompressor errors.
pub fn run_squashed_budgeted(
    squashed: &Squashed,
    input: &[u8],
    deadline: Option<u64>,
    cache: Option<crate::fleet::cache::CacheHandle>,
) -> Result<RunResult, SquashError> {
    run_squashed_inner(squashed, input, None, None, None, deadline, cache).map(|(run, _)| run)
}

fn run_squashed_inner(
    squashed: &Squashed,
    input: &[u8],
    icache: Option<ICacheConfig>,
    sink: Option<Box<dyn TraceSink>>,
    sample_every: Option<u64>,
    deadline: Option<u64>,
    cache: Option<crate::fleet::cache::CacheHandle>,
) -> Result<(RunResult, Option<squash_vm::Sampler>), SquashError> {
    let mut vm = Vm::new(squashed.min_mem_size(1 << 18));
    for (base, bytes) in &squashed.segments {
        vm.write_bytes(*base, bytes);
    }
    vm.set_pc(squashed.entry);
    vm.set_input(input.to_vec());
    if let Some(cfg) = icache {
        vm.enable_icache(cfg);
    }
    if let Some(period) = sample_every {
        vm.enable_sampling(period);
    }
    vm.set_deadline(deadline);
    let mut service = SquashRuntime::new(squashed.runtime.clone());
    if let Some(sink) = sink {
        service.set_sink(sink);
    }
    if let Some(handle) = cache {
        service.set_decode_cache(handle);
    }
    let out = vm.run_with(&mut service).map_err(|e| {
        // Keep the structured machine check (region, site, cycle, kind)
        // alongside the human-readable message so `squashrun` can report a
        // typed fault instead of a bare string.
        let fault = match &e {
            squash_vm::VmError::MachineCheck(mc) => Some(mc.clone()),
            _ => None,
        };
        SquashError { message: format!("squashed run failed: {e}"), fault }
    })?;
    let icache_stats = vm.icache_stats();
    let samples = vm.take_samples();
    Ok((
        RunResult {
            status: out.status,
            output: vm.take_output(),
            instructions: out.instructions,
            cycles: out.cycles,
            runtime: *service.stats(),
            icache: icache_stats,
        },
        samples,
    ))
}

/// Convenience: profile on `profile_inputs`, squash at the given options,
/// and verify behavioural equivalence on `check_input`, returning the
/// squashed artifact and both run results.
///
/// # Errors
///
/// Fails if any stage fails or if the squashed program's observable
/// behaviour (status + output) differs from the original's.
pub fn squash_and_check(
    program: &Program,
    profile_inputs: &[Vec<u8>],
    options: &crate::SquashOptions,
    check_input: &[u8],
) -> Result<(Squashed, RunResult, RunResult), SquashError> {
    let prof = profile(program, profile_inputs)?;
    let squashed = crate::Squasher::new(program, &prof, options)?.finish()?;
    let original = run_original(program, check_input)?;
    let compressed = run_squashed(&squashed, check_input)?;
    if original.status != compressed.status || original.output != compressed.output {
        return err(format!(
            "behaviour diverged: status {} vs {}, output {} vs {} bytes",
            original.status,
            compressed.status,
            original.output.len(),
            compressed.output.len()
        ));
    }
    Ok((squashed, original, compressed))
}
