//! Differential tests: the table-driven fast decoder vs. the bit-by-bit
//! reference decoder.
//!
//! [`CanonicalCode::decode`] (root-table lookup with a reference fallback)
//! must be indistinguishable from [`CanonicalCode::decode_reference`] (the
//! paper's `DECODE()` loop) in every observable way: the symbols decoded,
//! the number of bits consumed after every step — success *or* failure —
//! and the error classification (`UnexpectedEof` vs. `Corrupt`). The
//! simulated decompressor charges cycles per bit read, so bit-consumption
//! equality is what makes the fast decoder a pure host-side optimisation
//! with provably unchanged simulated cost.

use std::collections::HashMap;

use squash_compress::{
    BitReader, BitWriter, CanonicalCode, CompressError, StreamModel, StreamOptions,
};
use squash_isa::{AluOp, BraOp, Inst, MemOp, PalOp, Reg};
use squash_testkit::{cases, Rng};

/// Decodes `bytes` to exhaustion with both decoders in lockstep, asserting
/// identical symbols, identical `bits_read()` after every step, and an
/// identical terminal error. Returns the decoded symbols.
fn assert_lockstep(code: &CanonicalCode, bytes: &[u8]) -> Vec<u32> {
    let mut fast = BitReader::new(bytes);
    let mut reference = BitReader::new(bytes);
    let mut symbols = Vec::new();
    loop {
        let f = code.decode(&mut fast);
        let r = code.decode_reference(&mut reference);
        assert_eq!(f, r, "decoders disagree at bit {}", reference.bits_read());
        assert_eq!(
            fast.bits_read(),
            reference.bits_read(),
            "bit consumption diverged after {f:?}"
        );
        match f {
            Ok(sym) => symbols.push(sym),
            Err(_) => return symbols,
        }
        // Every valid stream eventually errors (EOF at least), bounding the
        // loop; guard against a decoder that stops consuming.
        assert!(
            fast.bits_read() > 0,
            "decoder made no progress on a successful decode"
        );
    }
}

/// `n` distinct symbols below `sym_bound` with frequencies in
/// `[1, freq_bound]`.
fn arb_freqs(rng: &mut Rng, min_n: u64, max_n: u64) -> HashMap<u32, u64> {
    let n = rng.range(min_n as i64, max_n as i64) as u64;
    let mut pairs = HashMap::new();
    while (pairs.len() as u64) < n {
        pairs.insert(rng.below(4096) as u32, 1 + rng.below(10_000));
    }
    pairs
}

#[test]
fn prop_fast_matches_reference_on_valid_streams() {
    cases(0xFA57, 192, |rng| {
        let freqs = arb_freqs(rng, 1, 60);
        let code = CanonicalCode::from_frequencies(&freqs);
        let symbols: Vec<u32> = freqs.keys().copied().collect();
        let msg: Vec<u32> = rng.vec(0, 200, |r| *r.pick(&symbols));
        let mut w = BitWriter::new();
        for &s in &msg {
            code.encode(s, &mut w).unwrap();
        }
        let bytes = w.into_bytes();
        let decoded = assert_lockstep(&code, &bytes);
        // The lockstep run reads past the message into the zero padding of
        // the final byte; the message itself must be a prefix.
        assert!(decoded.len() >= msg.len());
        assert_eq!(&decoded[..msg.len()], &msg[..]);
    });
}

#[test]
fn prop_fast_matches_reference_on_truncated_streams() {
    cases(0x7256, 128, |rng| {
        let freqs = arb_freqs(rng, 2, 40);
        let code = CanonicalCode::from_frequencies(&freqs);
        let symbols: Vec<u32> = freqs.keys().copied().collect();
        let msg: Vec<u32> = rng.vec(1, 60, |r| *r.pick(&symbols));
        let mut w = BitWriter::new();
        for &s in &msg {
            code.encode(s, &mut w).unwrap();
        }
        let bytes = w.into_bytes();
        let cut = rng.below(bytes.len() as u64 + 1) as usize;
        assert_lockstep(&code, &bytes[..cut]);
    });
}

#[test]
fn prop_fast_matches_reference_on_garbage() {
    cases(0x6A66, 256, |rng| {
        let freqs = arb_freqs(rng, 1, 30);
        let code = CanonicalCode::from_frequencies(&freqs);
        let bytes: Vec<u8> = rng.vec(0, 64, |r| r.u8());
        assert_lockstep(&code, &bytes);
    });
}

#[test]
fn single_symbol_code_lockstep() {
    let code = CanonicalCode::from_frequencies(&HashMap::from([(7u32, 5u64)]));
    // Codeword is a single 0 bit; an all-zero byte decodes 8 symbols, and
    // any 1 bit is an invalid prefix.
    for bytes in [&[0u8][..], &[0xFF][..], &[0x01][..], &[][..]] {
        assert_lockstep(&code, bytes);
    }
}

#[test]
fn empty_code_rejects_identically() {
    let code = CanonicalCode::from_frequencies(&HashMap::new());
    for bytes in [&[][..], &[0xAB][..]] {
        let mut fast = BitReader::new(bytes);
        let mut reference = BitReader::new(bytes);
        assert_eq!(code.decode(&mut fast), code.decode_reference(&mut reference));
        assert_eq!(fast.bits_read(), 0);
        assert_eq!(reference.bits_read(), 0);
    }
}

/// Fibonacci frequencies build a maximally skewed Huffman tree: 32 symbols
/// give a deepest codeword of 31 bits — the longest the code construction
/// permits, and far past the fast decoder's root table, exercising the
/// fallback tier.
fn fibonacci_code() -> CanonicalCode {
    let mut freqs = HashMap::new();
    let (mut a, mut b) = (1u64, 1u64);
    for sym in 0..32u32 {
        freqs.insert(sym, a);
        let next = a + b;
        a = b;
        b = next;
    }
    CanonicalCode::from_frequencies(&freqs)
}

#[test]
fn max_length_codewords_take_the_fallback_path() {
    let code = fibonacci_code();
    let max_len = code.counts().len() as u32 - 1;
    assert_eq!(max_len, 31, "fixture must produce a 31-bit codeword");
    // Encode the rarest symbols (longest codewords) and some common ones.
    let msg: Vec<u32> = vec![0, 1, 31, 0, 30, 31, 15, 2, 31];
    let mut w = BitWriter::new();
    for &s in &msg {
        code.encode(s, &mut w).unwrap();
    }
    let bytes = w.into_bytes();
    let decoded = assert_lockstep(&code, &bytes);
    assert_eq!(&decoded[..msg.len()], &msg[..]);
    // And every truncation of that stream errs identically on both paths.
    for cut in 0..bytes.len() {
        assert_lockstep(&code, &bytes[..cut]);
    }
}

#[test]
fn prop_fibonacci_streams_lockstep() {
    let code = fibonacci_code();
    cases(0xF1B0, 96, |rng| {
        let msg: Vec<u32> = rng.vec(1, 40, |r| r.below(32) as u32);
        let mut w = BitWriter::new();
        for &s in &msg {
            code.encode(s, &mut w).unwrap();
        }
        let bytes = w.into_bytes();
        let cut = rng.below(bytes.len() as u64 + 1) as usize;
        assert_lockstep(&code, &bytes[..cut]);
    });
}

// ---------------------------------------------------------------------------
// Region-level differential: the full splitting-streams decode loop.
// ---------------------------------------------------------------------------

fn arb_inst(rng: &mut Rng) -> Inst {
    match rng.below(6) {
        0 => Inst::Mem {
            op: *rng.pick(&MemOp::ALL),
            ra: Reg::new(rng.below(32) as u8),
            rb: Reg::new(rng.below(32) as u8),
            disp: rng.i16(),
        },
        1 => Inst::Bra {
            op: *rng.pick(&BraOp::ALL),
            ra: Reg::new(rng.below(32) as u8),
            disp: rng.range(-1000, 999) as i32,
        },
        2 => Inst::Opr {
            func: *rng.pick(&AluOp::ALL),
            ra: Reg::new(rng.below(32) as u8),
            rb: Reg::new(rng.below(32) as u8),
            rc: Reg::new(rng.below(32) as u8),
        },
        3 => Inst::Imm {
            func: *rng.pick(&AluOp::ALL),
            ra: Reg::new(rng.below(32) as u8),
            lit: rng.u8(),
            rc: Reg::new(rng.below(32) as u8),
        },
        4 => Inst::Jmp {
            ra: Reg::new(rng.below(32) as u8),
            rb: Reg::new(rng.below(32) as u8),
            hint: 0,
        },
        _ => Inst::Pal {
            func: *rng.pick(&PalOp::ALL),
        },
    }
}

/// Region decode through the fast and reference paths must agree exactly —
/// instructions, bit count, or error — on valid, truncated, and garbage
/// inputs, with and without the MTF transform.
#[test]
fn prop_region_decode_fast_matches_reference() {
    cases(0x2EC0, 96, |rng| {
        let region = rng.vec(0, 80, arb_inst);
        let options = if rng.below(2) == 0 {
            StreamOptions::default()
        } else {
            StreamOptions::with_displacement_mtf()
        };
        let model = StreamModel::train_with(&[&region], options);
        let bytes = model.compress_region(&region).unwrap();
        let fast = model.decompress_region(&bytes, 0).unwrap();
        let reference = model.decompress_region_reference(&bytes, 0).unwrap();
        assert_eq!(fast, reference);
        assert_eq!(fast.0, region);
        // Truncations and bit-flips must fail (or succeed) identically.
        let cut = rng.below(bytes.len() as u64 + 1) as usize;
        assert_eq!(
            model.decompress_region(&bytes[..cut], 0),
            model.decompress_region_reference(&bytes[..cut], 0)
        );
        if !bytes.is_empty() {
            let mut corrupt = bytes.clone();
            let i = rng.below(corrupt.len() as u64) as usize;
            corrupt[i] ^= 1 << rng.below(8);
            assert_eq!(
                model.decompress_region(&corrupt, 0),
                model.decompress_region_reference(&corrupt, 0)
            );
        }
    });
}

/// A model whose opcode alphabet has been tampered with decodes symbols
/// outside the 6-bit opcode space; the decoder must reject them as
/// [`CompressError::OpcodeOutOfRange`] instead of truncating with `as u8`.
#[test]
fn out_of_range_opcode_is_a_typed_error() {
    let region = vec![
        Inst::Imm { func: AluOp::Add, ra: Reg::T0, lit: 1, rc: Reg::T0 },
        Inst::Jmp { ra: Reg::ZERO, rb: Reg::RA, hint: 0 },
    ];
    // MTF on every stream routes decoded symbols through the serialized
    // alphabet, so corrupting the opcode alphabet in the serialized model
    // yields arbitrary u32 "opcodes" — e.g. 0x139 (= 0x39 mod 256), which
    // the old `as u8` cast would have folded into a valid-looking opcode.
    let options = StreamOptions {
        mtf: [true; squash_isa::FieldKind::COUNT],
    };
    let model = StreamModel::train_with(&[&region], options);
    let blob = model.compress_region(&region).unwrap();
    let mut bytes = model.serialize();
    let opcodes: Vec<u32> = region.iter().map(|i| i.opcode() as u32).collect();
    // The serialized alphabets store each value as a little-endian u32;
    // rewrite an opcode-alphabet entry to a value > 0x3F that aliases a
    // trained opcode mod 256.
    let target = opcodes[0];
    let needle = target.to_le_bytes();
    let pos = bytes
        .windows(4)
        .rposition(|w| w == needle)
        .expect("opcode value present in serialized alphabets");
    bytes[pos..pos + 4].copy_from_slice(&(target + 0x100).to_le_bytes());
    let tampered = StreamModel::deserialize(&bytes).expect("structurally valid model");
    for result in [
        tampered.decompress_region(&blob, 0),
        tampered.decompress_region_reference(&blob, 0),
    ] {
        match result {
            Err(CompressError::OpcodeOutOfRange { symbol }) => {
                assert_eq!(symbol, target + 0x100);
            }
            other => panic!("expected OpcodeOutOfRange, got {other:?}"),
        }
    }
}
