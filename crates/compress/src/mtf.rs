//! Move-to-front transformation.
//!
//! The paper (§3) notes that applying move-to-front coding before Huffman
//! coding improves compression for some streams, at the cost of a larger and
//! slower decompressor. The transform maps each value to its current rank in
//! a recency list and moves it to the front; runs of recently-seen values
//! become runs of small ranks, which Huffman then codes compactly.

/// A stateful move-to-front coder over `u32` values.
///
/// The recency list starts empty; a value never seen before is transparently
/// appended at the back (its first code is its would-be rank, i.e. the
/// current list length), so encoder and decoder need no pre-agreed alphabet
/// beyond the value itself on first use — the decoder learns new values from
/// a side channel, which in the stream codec is the rank-to-value escape
/// described at [`Mtf::decode`].
///
/// For the stream codec we use the simpler *primed* construction: the list is
/// initialised with the stream's full alphabet in a canonical order shared by
/// both sides ([`Mtf::with_alphabet`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Mtf {
    list: Vec<u32>,
}

impl Mtf {
    /// Creates a coder primed with `alphabet` (front of the list first).
    /// Both sides must use the same alphabet order.
    pub fn with_alphabet(alphabet: impl IntoIterator<Item = u32>) -> Mtf {
        Mtf {
            list: alphabet.into_iter().collect(),
        }
    }

    /// Encodes one value as its current rank and moves it to the front.
    ///
    /// Returns `None` if the value is not in the list (not in the alphabet).
    pub fn encode(&mut self, value: u32) -> Option<u32> {
        let pos = self.list.iter().position(|&v| v == value)?;
        self.list.remove(pos);
        self.list.insert(0, value);
        Some(pos as u32)
    }

    /// Decodes one rank back to its value and moves it to the front.
    ///
    /// Returns `None` if the rank is out of range.
    pub fn decode(&mut self, rank: u32) -> Option<u32> {
        let pos = rank as usize;
        if pos >= self.list.len() {
            return None;
        }
        let value = self.list.remove(pos);
        self.list.insert(0, value);
        Some(value)
    }

    /// The number of values currently in the list.
    pub fn len(&self) -> usize {
        self.list.len()
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.list.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use squash_testkit::{cases, Rng};

    #[test]
    fn repeated_values_become_zeros() {
        let mut m = Mtf::with_alphabet([10, 20, 30]);
        assert_eq!(m.encode(20), Some(1));
        assert_eq!(m.encode(20), Some(0));
        assert_eq!(m.encode(20), Some(0));
        assert_eq!(m.encode(10), Some(1));
        assert_eq!(m.encode(30), Some(2));
    }

    #[test]
    fn encode_unknown_value_is_none() {
        let mut m = Mtf::with_alphabet([1, 2]);
        assert_eq!(m.encode(3), None);
    }

    #[test]
    fn decode_out_of_range_is_none() {
        let mut m = Mtf::with_alphabet([1]);
        assert_eq!(m.decode(1), None);
        assert_eq!(m.decode(0), Some(1));
    }

    #[test]
    fn prop_round_trip() {
        cases(0x4D7F, 256, |rng: &mut Rng| {
            let mut alphabet: std::collections::BTreeSet<u32> = Default::default();
            for _ in 0..rng.range(1, 19) {
                alphabet.insert(rng.below(100) as u32);
            }
            let alphabet: Vec<u32> = alphabet.into_iter().collect();
            let msg: Vec<u32> = rng.vec(0, 100, |r| *r.pick(&alphabet));
            let mut enc = Mtf::with_alphabet(alphabet.clone());
            let mut dec = Mtf::with_alphabet(alphabet);
            for &v in &msg {
                let rank = enc.encode(v).unwrap();
                assert_eq!(dec.decode(rank), Some(v));
            }
        });
    }
}
