//! The splitting-streams instruction codec (paper §3).

use std::collections::HashMap;
use std::fmt;

use squash_isa::{FieldKind, Inst, FIELD_KINDS, OPCODE_ILLEGAL};

use crate::bitio::{BitReader, BitWriter};
use crate::huffman::{CanonicalCode, HuffmanError};
use crate::mtf::Mtf;

/// Per-stream configuration for a [`StreamModel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamOptions {
    /// Which streams get a move-to-front transform before Huffman coding.
    /// Off by default, matching the paper's final design choice (MTF "has
    /// the undesirable effect of increasing the code size and running time
    /// of the decompression algorithm").
    pub mtf: [bool; FieldKind::COUNT],
}

impl Default for StreamOptions {
    fn default() -> StreamOptions {
        StreamOptions {
            mtf: [false; FieldKind::COUNT],
        }
    }
}

impl StreamOptions {
    /// Enables MTF on the displacement streams (`mem.disp`, `bra.disp`),
    /// the variant the paper experimented with.
    pub fn with_displacement_mtf() -> StreamOptions {
        let mut o = StreamOptions::default();
        o.mtf[FieldKind::MemDisp.index()] = true;
        o.mtf[FieldKind::BraDisp.index()] = true;
        o
    }
}

/// Errors from compressing or decompressing instruction regions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompressError {
    /// A Huffman-level failure.
    Huffman(HuffmanError),
    /// Decompression produced an opcode with no known format.
    BadOpcode {
        /// The decoded opcode value.
        opcode: u32,
    },
    /// Decompression produced an opcode symbol outside the 6-bit opcode
    /// space — a corrupt stream or model. Kept distinct from
    /// [`CompressError::BadOpcode`] so the out-of-range symbol is reported
    /// in full rather than silently truncated to 8 bits.
    OpcodeOutOfRange {
        /// The decoded symbol, in full.
        symbol: u32,
    },
    /// A region to compress contains the sentinel, which is reserved.
    SentinelInInput,
}

impl fmt::Display for CompressError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompressError::Huffman(e) => write!(f, "huffman error: {e}"),
            CompressError::BadOpcode { opcode } => write!(f, "bad opcode {opcode} in stream"),
            CompressError::OpcodeOutOfRange { symbol } => {
                write!(f, "opcode symbol {symbol} outside the 6-bit opcode space")
            }
            CompressError::SentinelInInput => write!(f, "sentinel instruction in input region"),
        }
    }
}

impl std::error::Error for CompressError {}

impl From<HuffmanError> for CompressError {
    fn from(e: HuffmanError) -> CompressError {
        CompressError::Huffman(e)
    }
}

/// Per-stream corpus statistics, for reports and the §3 "≈66%" experiment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamStats {
    /// For each field kind: (symbols emitted, distinct values, encoded bits,
    /// table bytes).
    pub per_stream: Vec<(FieldKind, u64, u64, u64, u64)>,
    /// Total compressed payload bits (codewords only).
    pub payload_bits: u64,
    /// Total table bytes across streams.
    pub table_bytes: u64,
    /// Total uncompressed size of the corpus in bytes (4 bytes/instruction).
    pub original_bytes: u64,
}

impl StreamStats {
    /// Compressed size (payload + tables) over original size.
    pub fn ratio(&self) -> f64 {
        let compressed = self.payload_bits.div_ceil(8) + self.table_bytes;
        compressed as f64 / self.original_bytes.max(1) as f64
    }
}

/// A trained splitting-streams model: one canonical Huffman code per field
/// stream, shared by every compressed region of a program.
///
/// The model is trained on the final contents of all compressible regions
/// (after displacement adjustment), plus one sentinel per region; regions are
/// then encoded as a single merged codeword sequence each, terminated by the
/// sentinel opcode — exactly the paper's layout, where the "function offset
/// table" points at each region's start in one compressed blob.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamModel {
    codes: Vec<CanonicalCode>,
    alphabets: Vec<Vec<u32>>,
    options: StreamOptions,
}

// A trained model is shared immutably by the parallel region encoders
// (`&StreamModel` crosses `std::thread::scope` threads), so it must stay
// `Send + Sync`. This assertion fails to compile if a future field (say, a
// lazily populated `Cell`-based cache) silently breaks that.
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    let _ = assert_send_sync::<StreamModel>;
};

impl StreamModel {
    /// Trains a model with default options on the given regions.
    pub fn train(regions: &[&[Inst]]) -> StreamModel {
        StreamModel::train_with(regions, StreamOptions::default())
    }

    /// Trains a model on the given regions.
    ///
    /// Each region implicitly ends with the sentinel, so the sentinel's
    /// opcode frequency equals the region count.
    pub fn train_with(regions: &[&[Inst]], options: StreamOptions) -> StreamModel {
        // Pass 1: every value each stream sees, in order, into flat vectors
        // (hash/tree sets per symbol are the training hot spot — sorting a
        // flat u32 vector is far cheaper at corpus sizes).
        let mut values: Vec<Vec<u32>> = vec![Vec::new(); FieldKind::COUNT];
        for region in regions {
            for inst in *region {
                values[FieldKind::Opcode.index()].push(inst.opcode() as u32);
                for (kind, value) in inst.fields() {
                    values[kind.index()].push(value);
                }
            }
            values[FieldKind::Opcode.index()].push(OPCODE_ILLEGAL as u32);
        }
        let alphabets: Vec<Vec<u32>> = values
            .iter()
            .map(|v| {
                let mut a = v.clone();
                a.sort_unstable();
                a.dedup();
                a
            })
            .collect();
        // Pass 2: symbol frequencies. Without MTF the symbol *is* the value,
        // so counts are order-independent: run-length over the sorted
        // stream. With MTF the transform is sequential, so replay the
        // per-region encode exactly as the compressor will.
        let mut freqs: Vec<HashMap<u32, u64>> = vec![HashMap::new(); FieldKind::COUNT];
        for k in FIELD_KINDS {
            if options.mtf[k.index()] {
                continue;
            }
            let mut sorted = values[k.index()].clone();
            sorted.sort_unstable();
            let f = &mut freqs[k.index()];
            let mut i = 0;
            while i < sorted.len() {
                let j = sorted[i..].partition_point(|&v| v == sorted[i]) + i;
                f.insert(sorted[i], (j - i) as u64);
                i = j;
            }
        }
        if options.mtf.iter().any(|&on| on) {
            for region in regions {
                let mut mtfs = make_mtfs(&options, &alphabets);
                let mut bump = |kind: FieldKind, value: u32, mtfs: &mut [Option<Mtf>]| {
                    let Some(m) = &mut mtfs[kind.index()] else { return };
                    let sym = m.encode(value).expect("value in alphabet");
                    *freqs[kind.index()].entry(sym).or_default() += 1;
                };
                for inst in *region {
                    bump(FieldKind::Opcode, inst.opcode() as u32, &mut mtfs);
                    for (kind, value) in inst.fields() {
                        bump(kind, value, &mut mtfs);
                    }
                }
                bump(FieldKind::Opcode, OPCODE_ILLEGAL as u32, &mut mtfs);
            }
        }
        let codes = freqs.iter().map(CanonicalCode::from_frequencies).collect();
        StreamModel {
            codes,
            alphabets,
            options,
        }
    }

    /// The canonical code for one stream.
    pub fn code(&self, kind: FieldKind) -> &CanonicalCode {
        &self.codes[kind.index()]
    }

    /// Total serialized size of all code tables in bytes — the "code
    /// representation and value list for each stream" that the compressed
    /// program must carry.
    pub fn table_bytes(&self) -> u64 {
        FIELD_KINDS
            .iter()
            .map(|&k| self.codes[k.index()].table_bytes(k.bits()))
            .sum()
    }

    /// Compresses one region into a byte-aligned bit stream ending with the
    /// sentinel codeword.
    ///
    /// # Errors
    ///
    /// Fails if the region contains a value the model was not trained on, or
    /// contains the reserved sentinel.
    pub fn compress_region(&self, insts: &[Inst]) -> Result<Vec<u8>, CompressError> {
        let mut w = BitWriter::new();
        self.compress_region_into(insts, &mut w)?;
        Ok(w.into_bytes())
    }

    /// Compresses one region into an existing writer (used to concatenate
    /// all regions into the single compressed blob).
    ///
    /// # Errors
    ///
    /// Same as [`StreamModel::compress_region`].
    pub fn compress_region_into(
        &self,
        insts: &[Inst],
        w: &mut BitWriter,
    ) -> Result<(), CompressError> {
        let mut mtfs = make_mtfs(&self.options, &self.alphabets);
        let put = |kind: FieldKind, value: u32, w: &mut BitWriter, mtfs: &mut [Option<Mtf>]| {
            let sym = match &mut mtfs[kind.index()] {
                Some(m) => m
                    .encode(value)
                    .ok_or(HuffmanError::NotInCode { value })?,
                None => value,
            };
            self.codes[kind.index()].encode(sym, w)
        };
        for inst in insts {
            if matches!(inst, Inst::Illegal) {
                return Err(CompressError::SentinelInInput);
            }
            put(FieldKind::Opcode, inst.opcode() as u32, w, &mut mtfs)?;
            for (kind, value) in inst.fields() {
                put(kind, value, w, &mut mtfs)?;
            }
        }
        put(FieldKind::Opcode, OPCODE_ILLEGAL as u32, w, &mut mtfs)?;
        Ok(())
    }

    /// Decompresses one region starting at `bit_offset` within `bytes`,
    /// stopping at (and consuming) the sentinel, using the table-driven fast
    /// decoder ([`CanonicalCode::decode`]) on each of the field streams.
    ///
    /// Returns the instructions and the number of bits read — the
    /// decompressor's cycle cost model charges per bit, and the fast decoder
    /// reads exactly the bits the reference decoder would, so simulated
    /// cycle counts are independent of which decoder ran (see
    /// [`StreamModel::decompress_region_reference`]).
    ///
    /// # Errors
    ///
    /// Fails on a truncated or corrupt codeword sequence.
    pub fn decompress_region(
        &self,
        bytes: &[u8],
        bit_offset: u64,
    ) -> Result<(Vec<Inst>, u64), CompressError> {
        // Resolve every stream's decode table once; the loop then decodes
        // each symbol through a flat borrowed view (see
        // `CanonicalCode::fast_decoder`).
        let decoders: [_; FieldKind::COUNT] =
            std::array::from_fn(|i| self.codes[i].fast_decoder());
        if self.options.mtf.iter().any(|&on| on) {
            // MTF decode is stateful per symbol; route it through the
            // generic loop (the paper's default rejects MTF, so this is the
            // cold configuration).
            return self.decompress_region_with(bytes, bit_offset, |kind, r| {
                decoders[kind.index()].decode(r)
            });
        }
        // The hot shape: `Inst::from_field_source` classifies each opcode
        // once and requests its fields in stream order, so every per-field
        // decoder below resolves to a compile-time constant index into
        // `decoders` — table pointers stay in registers across the region.
        let mut r = BitReader::at_bit(bytes, bit_offset);
        let mut insts = Vec::with_capacity(64);
        loop {
            let opcode = decoders[FieldKind::Opcode.index()].decode(&mut r)?;
            if opcode == OPCODE_ILLEGAL as u32 {
                break;
            }
            // Guard the 6-bit opcode space before narrowing: a corrupt
            // stream or model can decode to a symbol > 0x3F, which an `as
            // u8` cast would silently fold into a valid-looking opcode.
            if opcode > OPCODE_ILLEGAL as u32 {
                return Err(CompressError::OpcodeOutOfRange { symbol: opcode });
            }
            let built = Inst::from_field_source(opcode as u8, |kind| {
                decoders[kind.index()].decode(&mut r)
            })?;
            match built {
                Ok(inst) => insts.push(inst),
                Err(_) => return Err(CompressError::BadOpcode { opcode }),
            }
        }
        Ok((insts, r.bits_read() - bit_offset))
    }

    /// [`StreamModel::decompress_region`] forced onto the one-bit-at-a-time
    /// reference decoder ([`CanonicalCode::decode_reference`]). The
    /// differential tests and benches pit the fast path against this oracle:
    /// identical instructions, identical bit counts, identical errors.
    ///
    /// # Errors
    ///
    /// Same as [`StreamModel::decompress_region`].
    pub fn decompress_region_reference(
        &self,
        bytes: &[u8],
        bit_offset: u64,
    ) -> Result<(Vec<Inst>, u64), CompressError> {
        self.decompress_region_with(bytes, bit_offset, |kind, r| {
            self.codes[kind.index()].decode_reference(r)
        })
    }

    /// The shared one-pass decode loop, parameterized by the per-symbol
    /// decoder so the fast path and the reference oracle cannot drift.
    fn decompress_region_with(
        &self,
        bytes: &[u8],
        bit_offset: u64,
        mut decode: impl FnMut(FieldKind, &mut BitReader<'_>) -> Result<u32, HuffmanError>,
    ) -> Result<(Vec<Inst>, u64), CompressError> {
        let mut r = BitReader::at_bit(bytes, bit_offset);
        // MTF is off by default (the paper rejects it for decode speed);
        // when no stream uses it, keep the per-symbol path free of the
        // transform entirely.
        let any_mtf = self.options.mtf.iter().any(|&on| on);
        let mut mtfs = if any_mtf {
            make_mtfs(&self.options, &self.alphabets)
        } else {
            Vec::new()
        };
        let mut get = |kind: FieldKind, r: &mut BitReader<'_>| {
            let sym = decode(kind, r)?;
            if !any_mtf {
                return Ok(sym);
            }
            match &mut mtfs[kind.index()] {
                Some(m) => m.decode(sym).ok_or(HuffmanError::Corrupt),
                None => Ok(sym),
            }
        };
        let mut insts = Vec::with_capacity(64);
        // No instruction has more than 4 operand fields.
        let mut values = [0u32; 4];
        loop {
            let opcode = get(FieldKind::Opcode, &mut r)?;
            if opcode == OPCODE_ILLEGAL as u32 {
                break;
            }
            // Guard the 6-bit opcode space before narrowing: a corrupt
            // stream or model can decode to a symbol > 0x3F, which an `as
            // u8` cast would silently fold into a valid-looking opcode.
            if opcode > OPCODE_ILLEGAL as u32 {
                return Err(CompressError::OpcodeOutOfRange { symbol: opcode });
            }
            let kinds = Inst::field_kinds_for(opcode as u8)
                .ok_or(CompressError::BadOpcode { opcode })?;
            for (slot, &kind) in values.iter_mut().zip(kinds) {
                *slot = get(kind, &mut r)?;
            }
            let inst = Inst::from_fields(opcode as u8, &values[..kinds.len()])
                .map_err(|_| CompressError::BadOpcode { opcode })?;
            insts.push(inst);
        }
        Ok((insts, r.bits_read() - bit_offset))
    }

    /// The exact compressed size in bits of a region under this model
    /// (without byte padding), or an error if it contains untrained values.
    ///
    /// # Errors
    ///
    /// Same as [`StreamModel::compress_region`].
    pub fn region_bits(&self, insts: &[Inst]) -> Result<u64, CompressError> {
        let mut w = BitWriter::new();
        self.compress_region_into(insts, &mut w)?;
        Ok(w.bit_len())
    }

    /// Corpus statistics for a set of regions under this model.
    ///
    /// # Errors
    ///
    /// Same as [`StreamModel::compress_region`].
    pub fn stats(&self, regions: &[&[Inst]]) -> Result<StreamStats, CompressError> {
        let mut per: Vec<(u64, u64)> = vec![(0, 0); FieldKind::COUNT]; // (symbols, bits)
        let mut payload_bits = 0u64;
        let mut original = 0u64;
        for region in regions {
            original += region.len() as u64 * 4;
            let mut mtfs = make_mtfs(&self.options, &self.alphabets);
            let tally = |kind: FieldKind,
                             value: u32,
                             per: &mut Vec<(u64, u64)>,
                             mtfs: &mut [Option<Mtf>]|
             -> Result<u64, CompressError> {
                let sym = match &mut mtfs[kind.index()] {
                    Some(m) => m
                        .encode(value)
                        .ok_or(HuffmanError::NotInCode { value })?,
                    None => value,
                };
                let (_, len) = self.codes[kind.index()]
                    .codeword(sym)
                    .ok_or(HuffmanError::NotInCode { value: sym })?;
                per[kind.index()].0 += 1;
                per[kind.index()].1 += len as u64;
                Ok(len as u64)
            };
            for inst in *region {
                payload_bits += tally(FieldKind::Opcode, inst.opcode() as u32, &mut per, &mut mtfs)?;
                for (kind, value) in inst.fields() {
                    payload_bits += tally(kind, value, &mut per, &mut mtfs)?;
                }
            }
            payload_bits +=
                tally(FieldKind::Opcode, OPCODE_ILLEGAL as u32, &mut per, &mut mtfs)?;
        }
        let per_stream = FIELD_KINDS
            .iter()
            .map(|&k| {
                let (symbols, bits) = per[k.index()];
                (
                    k,
                    symbols,
                    self.codes[k.index()].len() as u64,
                    bits,
                    self.codes[k.index()].table_bytes(k.bits()),
                )
            })
            .collect();
        Ok(StreamStats {
            per_stream,
            payload_bits,
            table_bytes: self.table_bytes(),
            original_bytes: original,
        })
    }
}

fn make_mtfs(options: &StreamOptions, alphabets: &[Vec<u32>]) -> Vec<Option<Mtf>> {
    FIELD_KINDS
        .iter()
        .map(|&k| {
            options.mtf[k.index()]
                .then(|| Mtf::with_alphabet(alphabets[k.index()].iter().copied()))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use squash_isa::{AluOp, BraOp, MemOp, PalOp, Reg};
    use squash_testkit::{cases, Rng};

    fn sample_region() -> Vec<Inst> {
        vec![
            Inst::Mem { op: MemOp::Lda, ra: Reg::SP, rb: Reg::SP, disp: -32 },
            Inst::Mem { op: MemOp::Stq, ra: Reg::RA, rb: Reg::SP, disp: 0 },
            Inst::Imm { func: AluOp::Add, ra: Reg::A0, lit: 1, rc: Reg::A0 },
            Inst::Bra { op: BraOp::Bne, ra: Reg::A0, disp: -2 },
            Inst::Opr { func: AluOp::Or, ra: Reg::V0, rb: Reg::ZERO, rc: Reg::A0 },
            Inst::Pal { func: PalOp::WriteB },
            Inst::Mem { op: MemOp::Ldq, ra: Reg::RA, rb: Reg::SP, disp: 0 },
            Inst::Mem { op: MemOp::Lda, ra: Reg::SP, rb: Reg::SP, disp: 32 },
            Inst::Jmp { ra: Reg::ZERO, rb: Reg::RA, hint: 0 },
        ]
    }

    #[test]
    fn region_round_trip() {
        let region = sample_region();
        let model = StreamModel::train(&[&region]);
        let bytes = model.compress_region(&region).unwrap();
        let (decoded, bits) = model.decompress_region(&bytes, 0).unwrap();
        assert_eq!(decoded, region);
        assert!(bits <= bytes.len() as u64 * 8);
        assert!(bits > 0);
    }

    #[test]
    fn multiple_regions_concatenated() {
        let r1 = sample_region();
        let r2: Vec<Inst> = sample_region().into_iter().rev().collect();
        let model = StreamModel::train(&[&r1, &r2]);
        let mut w = BitWriter::new();
        model.compress_region_into(&r1, &mut w).unwrap();
        let r1_bits = w.bit_len();
        model.compress_region_into(&r2, &mut w).unwrap();
        let blob = w.into_bytes();
        let (d1, used1) = model.decompress_region(&blob, 0).unwrap();
        assert_eq!(d1, r1);
        assert_eq!(used1, r1_bits);
        let (d2, _) = model.decompress_region(&blob, r1_bits).unwrap();
        assert_eq!(d2, r2);
    }

    #[test]
    fn sentinel_in_input_rejected() {
        let region = vec![Inst::Illegal];
        let model = StreamModel::train(&[&region]);
        assert_eq!(
            model.compress_region(&region),
            Err(CompressError::SentinelInInput)
        );
    }

    #[test]
    fn untrained_value_rejected() {
        let region = sample_region();
        let model = StreamModel::train(&[&region]);
        let alien = vec![Inst::Mem { op: MemOp::Lda, ra: Reg::T9, rb: Reg::T9, disp: 12345 }];
        assert!(model.compress_region(&alien).is_err());
    }

    #[test]
    fn truncated_stream_fails_cleanly() {
        let region = sample_region();
        let model = StreamModel::train(&[&region]);
        let bytes = model.compress_region(&region).unwrap();
        let err = model.decompress_region(&bytes[..bytes.len() / 2], 0);
        assert!(err.is_err());
    }

    #[test]
    fn mtf_round_trip() {
        let region = sample_region();
        let model = StreamModel::train_with(&[&region], StreamOptions::with_displacement_mtf());
        let bytes = model.compress_region(&region).unwrap();
        let (decoded, _) = model.decompress_region(&bytes, 0).unwrap();
        assert_eq!(decoded, region);
    }

    #[test]
    fn compression_beats_raw_encoding_on_repetitive_code() {
        // A long, repetitive region: canonical Huffman should get well under
        // 32 bits/inst (the paper reports ≈66% overall for whole programs,
        // including tables).
        let mut region = Vec::new();
        for i in 0..200 {
            region.push(Inst::Mem { op: MemOp::Ldq, ra: Reg::T0, rb: Reg::SP, disp: (i % 4) * 8 });
            region.push(Inst::Imm { func: AluOp::Add, ra: Reg::T0, lit: 1, rc: Reg::T0 });
            region.push(Inst::Mem { op: MemOp::Stq, ra: Reg::T0, rb: Reg::SP, disp: (i % 4) * 8 });
        }
        let model = StreamModel::train(&[&region]);
        let bits = model.region_bits(&region).unwrap();
        let raw_bits = region.len() as u64 * 32;
        assert!(
            bits * 2 < raw_bits,
            "expected >2x payload compression, got {bits} vs {raw_bits}"
        );
    }

    #[test]
    fn stats_are_consistent() {
        let region = sample_region();
        let model = StreamModel::train(&[&region]);
        let stats = model.stats(&[&region]).unwrap();
        assert_eq!(stats.original_bytes, region.len() as u64 * 4);
        let bits = model.region_bits(&region).unwrap();
        assert_eq!(stats.payload_bits, bits);
        assert!(stats.ratio() > 0.0);
        // Opcode stream saw one symbol per instruction plus the sentinel.
        let opcode_row = stats.per_stream[FieldKind::Opcode.index()];
        assert_eq!(opcode_row.1, region.len() as u64 + 1);
    }

    fn arb_inst(rng: &mut Rng) -> Inst {
        match rng.below(6) {
            0 => Inst::Mem {
                op: *rng.pick(&MemOp::ALL),
                ra: Reg::new(rng.below(32) as u8),
                rb: Reg::new(rng.below(32) as u8),
                disp: rng.i16(),
            },
            1 => Inst::Bra {
                op: *rng.pick(&BraOp::ALL),
                ra: Reg::new(rng.below(32) as u8),
                disp: rng.range(-1000, 999) as i32,
            },
            2 => Inst::Opr {
                func: *rng.pick(&AluOp::ALL),
                ra: Reg::new(rng.below(32) as u8),
                rb: Reg::new(rng.below(32) as u8),
                rc: Reg::new(rng.below(32) as u8),
            },
            3 => Inst::Imm {
                func: *rng.pick(&AluOp::ALL),
                ra: Reg::new(rng.below(32) as u8),
                lit: rng.u8(),
                rc: Reg::new(rng.below(32) as u8),
            },
            4 => Inst::Jmp {
                ra: Reg::new(rng.below(32) as u8),
                rb: Reg::new(rng.below(32) as u8),
                hint: 0,
            },
            _ => Inst::Pal {
                func: *rng.pick(&PalOp::ALL),
            },
        }
    }

    #[test]
    fn prop_region_round_trip() {
        cases(0x2E61, 96, |rng| {
            let region = rng.vec(0, 80, arb_inst);
            let model = StreamModel::train(&[&region]);
            let bytes = model.compress_region(&region).unwrap();
            let (decoded, _) = model.decompress_region(&bytes, 0).unwrap();
            assert_eq!(decoded, region);
        });
    }

    #[test]
    fn prop_mtf_region_round_trip() {
        cases(0x4D7F2, 96, |rng| {
            let region = rng.vec(0, 60, arb_inst);
            let opts = StreamOptions::with_displacement_mtf();
            let model = StreamModel::train_with(&[&region], opts);
            let bytes = model.compress_region(&region).unwrap();
            let (decoded, _) = model.decompress_region(&bytes, 0).unwrap();
            assert_eq!(decoded, region);
        });
    }

    #[test]
    fn prop_cross_region_round_trip() {
        cases(0xC505, 96, |rng| {
            let r1 = rng.vec(1, 40, arb_inst);
            let r2 = rng.vec(1, 40, arb_inst);
            let model = StreamModel::train(&[&r1, &r2]);
            let mut w = BitWriter::new();
            model.compress_region_into(&r1, &mut w).unwrap();
            let off = w.bit_len();
            model.compress_region_into(&r2, &mut w).unwrap();
            let blob = w.into_bytes();
            assert_eq!(model.decompress_region(&blob, 0).unwrap().0, r1);
            assert_eq!(model.decompress_region(&blob, off).unwrap().0, r2);
        });
    }
}

#[cfg(test)]
mod robustness {
    use super::*;
    use squash_isa::{AluOp, MemOp, Reg};
    use squash_testkit::cases;

    fn small_model() -> StreamModel {
        let region = vec![
            Inst::Mem { op: MemOp::Ldq, ra: Reg::T0, rb: Reg::SP, disp: 8 },
            Inst::Imm { func: AluOp::Add, ra: Reg::T0, lit: 1, rc: Reg::T0 },
            Inst::Mem { op: MemOp::Stq, ra: Reg::T0, rb: Reg::SP, disp: 8 },
            Inst::Jmp { ra: Reg::ZERO, rb: Reg::RA, hint: 0 },
        ];
        StreamModel::train(&[&region])
    }

    /// The runtime decompressor consumes bytes from simulated memory;
    /// arbitrary garbage must produce an error, never a panic or an
    /// endless loop.
    #[test]
    fn prop_decompress_never_panics_on_garbage() {
        cases(0x6A2B, 256, |rng| {
            let bytes: Vec<u8> = rng.vec(0, 256, |r| r.u8());
            let offset = rng.below(64);
            let model = small_model();
            let _ = model.decompress_region(&bytes, offset);
        });
    }

    /// Truncating a valid blob at any point errors cleanly.
    #[test]
    fn prop_truncation_is_detected() {
        let model = small_model();
        let region = vec![
            Inst::Imm { func: AluOp::Add, ra: Reg::T0, lit: 1, rc: Reg::T0 };
            8
        ];
        // The training set lacks this exact region; skip if untrained.
        let Ok(full) = model.compress_region(&region) else {
            return;
        };
        for cut in 0..32usize.min(full.len()) {
            let _ = model.decompress_region(&full[..cut], 0);
        }
    }
}

impl StreamModel {
    /// Serializes the model — per-stream canonical-code tables, the MTF
    /// configuration, and the per-stream alphabets — so a squashed image can
    /// be written to disk and decompressed by a later process.
    pub fn serialize(&self) -> Vec<u8> {
        let mut out = Vec::new();
        // MTF flags as a 15-bit mask (little-endian u16).
        let mut mask = 0u16;
        for k in FIELD_KINDS {
            if self.options.mtf[k.index()] {
                mask |= 1 << k.index();
            }
        }
        out.extend_from_slice(&mask.to_le_bytes());
        for k in FIELD_KINDS {
            let table = self.codes[k.index()].serialize(k.bits());
            out.extend_from_slice(&(table.len() as u32).to_le_bytes());
            out.extend_from_slice(&table);
        }
        for k in FIELD_KINDS {
            let alpha = &self.alphabets[k.index()];
            out.extend_from_slice(&(alpha.len() as u32).to_le_bytes());
            for &v in alpha {
                out.extend_from_slice(&v.to_le_bytes());
            }
        }
        out
    }

    /// Reconstructs a model from [`StreamModel::serialize`] output.
    ///
    /// # Errors
    ///
    /// Returns [`CompressError::Huffman`] with
    /// [`HuffmanError::Corrupt`] on malformed input.
    pub fn deserialize(bytes: &[u8]) -> Result<StreamModel, CompressError> {
        let corrupt = || CompressError::Huffman(HuffmanError::Corrupt);
        let mut pos = 0usize;
        let take = |pos: &mut usize, n: usize| -> Result<&[u8], CompressError> {
            let s = bytes.get(*pos..*pos + n).ok_or_else(corrupt)?;
            *pos += n;
            Ok(s)
        };
        let mask = u16::from_le_bytes(take(&mut pos, 2)?.try_into().expect("take(2) returns 2 bytes"));
        let mut options = StreamOptions::default();
        let mut codes = Vec::with_capacity(FieldKind::COUNT);
        for k in FIELD_KINDS {
            options.mtf[k.index()] = mask & (1 << k.index()) != 0;
            let len = u32::from_le_bytes(take(&mut pos, 4)?.try_into().expect("take(4) returns 4 bytes")) as usize;
            let table = take(&mut pos, len)?;
            codes.push(CanonicalCode::deserialize(table, k.bits())?);
        }
        let mut alphabets: Vec<Vec<u32>> = vec![Vec::new(); FieldKind::COUNT];
        for k in FIELD_KINDS {
            let n = u32::from_le_bytes(take(&mut pos, 4)?.try_into().expect("take(4) returns 4 bytes")) as usize;
            if n > 1 << 22 {
                return Err(corrupt());
            }
            // 4 bytes per symbol: a count the remaining input cannot hold is
            // corruption — reject before sizing the allocation from it.
            if n > (bytes.len() - pos) / 4 {
                return Err(corrupt());
            }
            let mut alpha = Vec::with_capacity(n);
            for _ in 0..n {
                alpha.push(u32::from_le_bytes(take(&mut pos, 4)?.try_into().expect("take(4) returns 4 bytes")));
            }
            alphabets[k.index()] = alpha;
        }
        Ok(StreamModel {
            codes,
            alphabets,
            options,
        })
    }
}

#[cfg(test)]
mod serialization_tests {
    use super::*;
    use squash_isa::{AluOp, MemOp, Reg};

    fn region() -> Vec<Inst> {
        vec![
            Inst::Mem { op: MemOp::Lda, ra: Reg::SP, rb: Reg::SP, disp: -64 },
            Inst::Mem { op: MemOp::Stq, ra: Reg::RA, rb: Reg::SP, disp: 0 },
            Inst::Imm { func: AluOp::Add, ra: Reg::A0, lit: 9, rc: Reg::A0 },
            Inst::Mem { op: MemOp::Ldq, ra: Reg::RA, rb: Reg::SP, disp: 0 },
            Inst::Jmp { ra: Reg::ZERO, rb: Reg::RA, hint: 0 },
        ]
    }

    #[test]
    fn model_round_trips_through_bytes() {
        let r = region();
        let model = StreamModel::train(&[&r]);
        let bytes = model.serialize();
        let restored = StreamModel::deserialize(&bytes).unwrap();
        assert_eq!(restored, model);
        // And the restored model decodes blobs the original produced.
        let blob = model.compress_region(&r).unwrap();
        let (decoded, _) = restored.decompress_region(&blob, 0).unwrap();
        assert_eq!(decoded, r);
    }

    #[test]
    fn mtf_model_round_trips_with_alphabets() {
        let r = region();
        let model = StreamModel::train_with(&[&r], StreamOptions::with_displacement_mtf());
        let restored = StreamModel::deserialize(&model.serialize()).unwrap();
        assert_eq!(restored, model);
        let blob = model.compress_region(&r).unwrap();
        let (decoded, _) = restored.decompress_region(&blob, 0).unwrap();
        assert_eq!(decoded, r);
    }

    #[test]
    fn truncated_serialization_is_rejected() {
        let r = region();
        let model = StreamModel::train(&[&r]);
        let bytes = model.serialize();
        for cut in 0..bytes.len() {
            assert!(
                StreamModel::deserialize(&bytes[..cut]).is_err(),
                "cut at {cut} of {} should fail",
                bytes.len()
            );
        }
    }

    #[test]
    fn corrupted_serialization_never_panics() {
        use squash_testkit::{cases, Rng};
        let r = region();
        let mtf = StreamModel::train_with(&[&r], StreamOptions::with_displacement_mtf());
        let plain = StreamModel::train(&[&r]);
        let flip = |rng: &mut Rng, model: &StreamModel| {
            let mut bytes = model.serialize();
            for _ in 0..=rng.below(4) {
                let i = rng.below(bytes.len() as u64) as usize;
                bytes[i] ^= rng.u8().max(1);
            }
            // Either a model or a typed error — never a panic, never an
            // allocation driven by a forged length field.
            let _ = StreamModel::deserialize(&bytes);
        };
        cases(0xfeed, 300, |rng| flip(rng, &plain));
        cases(0xf00d, 300, |rng| flip(rng, &mtf));
    }

    #[test]
    fn forged_alphabet_count_is_rejected() {
        let r = region();
        let model = StreamModel::train_with(&[&r], StreamOptions::with_displacement_mtf());
        let bytes = model.serialize();
        // Overwrite the final alphabet's count (last 4-byte length header
        // written before its symbols) with a huge value against the
        // remaining payload: the remaining-bytes cap must reject it.
        let alpha_len = model.alphabets.last().map_or(0, Vec::len);
        let pos = bytes.len() - 4 * alpha_len - 4;
        let mut forged = bytes.clone();
        forged[pos..pos + 4].copy_from_slice(&((1u32 << 22) - 1).to_le_bytes());
        assert!(StreamModel::deserialize(&forged).is_err());
    }
}
