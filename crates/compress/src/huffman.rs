//! Canonical Huffman coding (paper §3).
//!
//! A canonical Huffman code has the same codeword *lengths* as an ordinary
//! Huffman code, but assigns the actual codewords by formula: the `N[i]`
//! codewords of length `i` are the consecutive `i`-bit values
//! `b_i, b_i+1, …, b_i+N[i]-1` where
//!
//! ```text
//! b_1 = 0,    b_i = 2 (b_{i-1} + N[i-1])   for i ≥ 2.
//! ```
//!
//! Decoding then needs only the `N[i]` array and the value array `D[j]`
//! (symbols ordered by codeword), which is why the paper picks this scheme:
//! the decompressor stays small and fast.

use std::collections::HashMap;
use std::fmt;
use std::sync::OnceLock;

use crate::bitio::{BitReader, BitWriter};

/// Errors from encoding or decoding with a [`CanonicalCode`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HuffmanError {
    /// Tried to encode a value the code was not trained on.
    NotInCode {
        /// The offending value.
        value: u32,
    },
    /// The bit stream ended in the middle of a codeword.
    UnexpectedEof,
    /// The bit stream contains a prefix that is no valid codeword.
    Corrupt,
}

impl fmt::Display for HuffmanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HuffmanError::NotInCode { value } => write!(f, "value {value} not in code"),
            HuffmanError::UnexpectedEof => write!(f, "unexpected end of bit stream"),
            HuffmanError::Corrupt => write!(f, "corrupt codeword sequence"),
        }
    }
}

impl std::error::Error for HuffmanError {}

/// A canonical Huffman code over `u32` symbol values.
#[derive(Debug, Clone)]
pub struct CanonicalCode {
    /// `counts[i]` = `N[i]`, the number of codewords of length `i`
    /// (`counts[0]` is always 0). Empty for a code over zero symbols.
    counts: Vec<u32>,
    /// `D[j]`: symbol values ordered by codeword value.
    values: Vec<u32>,
    /// Encoder side: symbol → (codeword, length).
    enc: HashMap<u32, (u32, u32)>,
    /// Fast-decoder lookup table, built lazily on first decode and shared by
    /// every region decoded with this code. Not part of the code's identity.
    table: OnceLock<DecodeTable>,
}

/// Equality is over the canonical tables only; the lazily built decode table
/// is a cache and `enc` is derived from `counts`/`values`.
impl PartialEq for CanonicalCode {
    fn eq(&self, other: &CanonicalCode) -> bool {
        self.counts == other.counts && self.values == other.values
    }
}

impl Eq for CanonicalCode {}

/// Codeword lengths above this trigger frequency rescaling during
/// construction, keeping every codeword in a `u32`.
const MAX_CODE_LEN: u32 = 31;

/// Root-table index width for the two-tier fast decoder: one table entry per
/// possible next-`ROOT_BITS` bits. 2^10 × 8 bytes = 8 KiB per code — small
/// enough to build eagerly per stream, wide enough that in practice almost
/// every codeword resolves in one lookup (opcode/register/literal streams
/// rarely exceed 10-bit codewords).
const ROOT_BITS: u32 = 10;

/// The zlib/zstd-style lookup table behind [`CanonicalCode::decode`]: the
/// next `root_bits` of the stream index straight into `root`, whose entry
/// packs `(symbol-value << 6) | codeword-length` for codewords no longer
/// than `root_bits` — the decoded value itself lives in the entry, so a hit
/// costs one table load with no second lookup through `D[]`. An entry of 0
/// marks a prefix that is either a longer codeword or invalid; those take
/// the reference path.
///
/// Entries are `u32` (half the cache footprint of a wider entry — the table
/// is hit with effectively uniform-random indices, so footprint is latency).
/// A symbol value too wide to pack beside the 6-bit length is simply left
/// as a fallback entry; every field stream's values fit in 26 bits.
#[derive(Debug, Clone)]
struct DecodeTable {
    root: Vec<u32>,
    root_bits: u32,
}

/// Largest symbol value that fits in a root entry above the 6-bit length.
const MAX_PACKED_VALUE: u32 = u32::MAX >> 6;

impl DecodeTable {
    /// Builds the root table from the canonical `N[i]`/`D[j]` arrays by
    /// enumerating codewords in canonical order (the same recurrence as the
    /// encoder).
    fn build(counts: &[u32], values: &[u32]) -> DecodeTable {
        let max_len = counts.len().saturating_sub(1) as u32;
        let root_bits = max_len.clamp(1, ROOT_BITS);
        let mut root = vec![0u32; 1usize << root_bits];
        // u64: at the 31-bit length limit the post-length doubling of a
        // complete code reaches 2^32.
        let mut code = 0u64;
        let mut index = 0usize;
        for len in 1..=max_len {
            for _ in 0..counts[len as usize] {
                if len <= root_bits && values[index] <= MAX_PACKED_VALUE {
                    // Every root index whose top `len` bits equal this
                    // codeword decodes to it.
                    let shift = root_bits - len;
                    let start = (code << shift) as usize;
                    let entry = (values[index] << 6) | len;
                    for slot in &mut root[start..start + (1usize << shift)] {
                        *slot = entry;
                    }
                }
                code += 1;
                index += 1;
            }
            code <<= 1;
        }
        DecodeTable { root, root_bits }
    }
}

/// A borrowed, fully resolved view of one code's decode table: the region
/// decode loop resolves each stream's `OnceLock` and table indirections
/// *once* per region and then decodes every symbol through this flat
/// struct — the per-symbol path is one peek, one table load, one consume.
#[derive(Clone, Copy)]
pub(crate) struct FastDecoder<'a> {
    code: &'a CanonicalCode,
    root: &'a [u32],
    root_bits: u32,
}

impl FastDecoder<'_> {
    /// Decodes one symbol; identical observable behavior to
    /// [`CanonicalCode::decode`].
    #[inline]
    pub(crate) fn decode(&self, r: &mut BitReader<'_>) -> Result<u32, HuffmanError> {
        let entry = self.root[r.peek_code(self.root_bits) as usize];
        let len = entry & 0x3F;
        // `commit_peeked` both bound-checks — the top `len` peeked bits
        // must be real stream bits, not EOF padding — and advances; by
        // prefix-freedom those bits are exactly this codeword.
        if len != 0 && r.commit_peeked(len) {
            return Ok(entry >> 6);
        }
        // Longer codeword, invalid prefix, or stream too short: the
        // reference loop reproduces the exact bit consumption and error
        // classification (an all-zero table, e.g. an empty code, lands
        // here too and yields `Corrupt`).
        self.code.decode_reference(r)
    }
}

impl CanonicalCode {
    /// Builds the optimal canonical code for the given symbol frequencies.
    /// Zero-frequency symbols are excluded from the code.
    ///
    /// Construction is deterministic: ties are broken by symbol value, so the
    /// same frequencies always produce the same tables (a requirement for
    /// reproducible compressed images).
    pub fn from_frequencies(freqs: &HashMap<u32, u64>) -> CanonicalCode {
        let mut symbols: Vec<(u32, u64)> = freqs
            .iter()
            .filter(|&(_, &f)| f > 0)
            .map(|(&v, &f)| (v, f))
            .collect();
        symbols.sort_unstable();
        if symbols.is_empty() {
            return CanonicalCode {
                counts: Vec::new(),
                values: Vec::new(),
                enc: HashMap::new(),
                table: OnceLock::new(),
            };
        }
        let mut lengths = code_lengths(&symbols);
        // Length-limit by rescaling: astronomically skewed frequencies could
        // otherwise exceed 31 bits.
        while lengths.iter().copied().max().unwrap_or(0) > MAX_CODE_LEN {
            symbols = symbols.iter().map(|&(v, f)| (v, f / 2 + 1)).collect();
            lengths = code_lengths(&symbols);
        }
        Self::from_lengths(symbols.iter().map(|&(v, _)| v).zip(lengths.iter().copied()))
    }

    /// Builds a canonical code from explicit `(symbol, length)` pairs
    /// (lengths must satisfy the Kraft equality, as Huffman lengths do).
    fn from_lengths(pairs: impl IntoIterator<Item = (u32, u32)>) -> CanonicalCode {
        let mut pairs: Vec<(u32, u32)> = pairs.into_iter().collect();
        if pairs.is_empty() {
            return CanonicalCode {
                counts: Vec::new(),
                values: Vec::new(),
                enc: HashMap::new(),
                table: OnceLock::new(),
            };
        }
        // Canonical order: by length, then by symbol value.
        pairs.sort_unstable_by_key(|&(v, len)| (len, v));
        let max_len = pairs.last().map(|&(_, len)| len).unwrap_or(0);
        let mut counts = vec![0u32; (max_len + 1) as usize];
        for &(_, len) in &pairs {
            counts[len as usize] += 1;
        }
        // b_i per the paper's recurrence, for i ≤ max_len only: b_{max+1}
        // would be 2^(max_len+1), which overflows u32 at the 31-bit limit
        // and corresponds to no codeword anyway.
        let mut first = vec![0u32; (max_len + 1) as usize];
        for i in 2..=(max_len as usize) {
            first[i] = 2 * (first[i - 1] + counts.get(i - 1).copied().unwrap_or(0));
        }
        let mut enc = HashMap::with_capacity(pairs.len());
        let mut values = Vec::with_capacity(pairs.len());
        let mut next = first.clone();
        for &(v, len) in &pairs {
            let code = next[len as usize];
            next[len as usize] += 1;
            enc.insert(v, (code, len));
            values.push(v);
        }
        CanonicalCode {
            counts,
            values,
            enc,
            table: OnceLock::new(),
        }
    }

    /// The number of distinct symbols in the code.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the code contains no symbols.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The `N[i]` array (index 0 unused). Exposed for table-size accounting
    /// and tests of the canonical structure.
    pub fn counts(&self) -> &[u32] {
        &self.counts
    }

    /// The `D[j]` array: symbols in codeword order.
    pub fn values(&self) -> &[u32] {
        &self.values
    }

    /// The codeword for `value` as `(code, length)`, if present.
    pub fn codeword(&self, value: u32) -> Option<(u32, u32)> {
        self.enc.get(&value).copied()
    }

    /// Encodes one symbol into `w`.
    ///
    /// # Errors
    ///
    /// [`HuffmanError::NotInCode`] if the value was not in the training
    /// frequencies.
    pub fn encode(&self, value: u32, w: &mut BitWriter) -> Result<(), HuffmanError> {
        let &(code, len) = self
            .enc
            .get(&value)
            .ok_or(HuffmanError::NotInCode { value })?;
        w.write_bits(code, len);
        Ok(())
    }

    /// Decodes one symbol from `r` via the two-tier fast path: peek the next
    /// `root_bits` bits, and if they start a codeword short enough to live
    /// in the root table, resolve symbol and length in one lookup. Longer
    /// codewords, invalid prefixes, and too-short streams fall back to
    /// [`CanonicalCode::decode_reference`], which reproduces the reference
    /// decoder's exact bit consumption and error classification.
    ///
    /// The table is built on first use and reused for every later decode
    /// with this code (all regions of a program share one code per stream).
    /// Both paths consume exactly the codeword's bits on success, so cycle
    /// accounting charged per bit read is identical whichever path ran.
    ///
    /// # Errors
    ///
    /// [`HuffmanError::UnexpectedEof`] if the stream ends mid-codeword,
    /// [`HuffmanError::Corrupt`] if no codeword matches.
    pub fn decode(&self, r: &mut BitReader<'_>) -> Result<u32, HuffmanError> {
        self.fast_decoder().decode(r)
    }

    /// Resolves the lazily built decode table into a [`FastDecoder`] so a
    /// caller decoding many symbols (the region decode loop) pays the
    /// `OnceLock` and table indirections once, not per symbol.
    pub(crate) fn fast_decoder(&self) -> FastDecoder<'_> {
        let t = self
            .table
            .get_or_init(|| DecodeTable::build(&self.counts, &self.values));
        FastDecoder {
            code: self,
            root: &t.root,
            root_bits: t.root_bits,
        }
    }

    /// Decodes one symbol from `r` using the paper's `DECODE()` loop:
    ///
    /// ```text
    /// v ← 0, b ← 0, j ← 0, i ← 0
    /// do
    ///     v ← 2v + NEXTBIT()
    ///     b ← 2(b + N[i])
    ///     j ← j + N[i]
    ///     i ← i + 1
    /// while (v ≥ b + N[i])
    /// return D[j + v − b]
    /// ```
    ///
    /// This one-bit-at-a-time loop is the differential reference oracle for
    /// the table-driven [`CanonicalCode::decode`]; the fast path must match
    /// its decoded symbols, bit consumption, and error classification
    /// exactly (see `tests/decoder_differential.rs` in this crate).
    ///
    /// # Errors
    ///
    /// [`HuffmanError::UnexpectedEof`] if the stream ends mid-codeword,
    /// [`HuffmanError::Corrupt`] if no codeword matches.
    pub fn decode_reference(&self, r: &mut BitReader<'_>) -> Result<u32, HuffmanError> {
        if self.counts.is_empty() {
            return Err(HuffmanError::Corrupt);
        }
        let max_len = self.counts.len() - 1;
        let mut v: u32 = 0;
        let mut b: u32 = 0;
        let mut j: u32 = 0;
        let mut i: usize = 0;
        loop {
            let bit = r.read_bit().ok_or(HuffmanError::UnexpectedEof)?;
            v = 2 * v + bit;
            b = 2 * (b + self.counts[i]);
            j += self.counts[i];
            i += 1;
            let n_i = self.counts.get(i).copied().unwrap_or(0);
            if v < b + n_i {
                break;
            }
            if i >= max_len {
                return Err(HuffmanError::Corrupt);
            }
        }
        self.values
            .get((j + v - b) as usize)
            .copied()
            .ok_or(HuffmanError::Corrupt)
    }

    /// Serializes the code tables: the `N[i]` array (LEB128 varints) and the
    /// `D[j]` array packed at `value_bits` bits per symbol. This is the
    /// "code representation and value list" the paper counts as part of the
    /// compressed program's size.
    pub fn serialize(&self, value_bits: u32) -> Vec<u8> {
        let mut out = Vec::new();
        write_varint(&mut out, self.counts.len().saturating_sub(1) as u64);
        for &c in self.counts.iter().skip(1) {
            write_varint(&mut out, c as u64);
        }
        let mut w = BitWriter::new();
        for &v in &self.values {
            w.write_bits(v, value_bits);
        }
        out.extend_from_slice(&w.into_bytes());
        out
    }

    /// Reconstructs a code from [`CanonicalCode::serialize`] output.
    ///
    /// # Errors
    ///
    /// [`HuffmanError::Corrupt`] on malformed input.
    pub fn deserialize(bytes: &[u8], value_bits: u32) -> Result<CanonicalCode, HuffmanError> {
        let mut pos = 0usize;
        let max_len = read_varint(bytes, &mut pos).ok_or(HuffmanError::Corrupt)? as usize;
        let mut counts = vec![0u32; max_len + 1];
        let mut total = 0u64;
        for c in counts.iter_mut().skip(1) {
            let v = read_varint(bytes, &mut pos).ok_or(HuffmanError::Corrupt)?;
            *c = u32::try_from(v).map_err(|_| HuffmanError::Corrupt)?;
            total += v;
        }
        let mut r = BitReader::at_bit(&bytes[pos..], 0);
        let mut pairs = Vec::with_capacity(total as usize);
        for (len, &count) in counts.iter().enumerate() {
            for _ in 0..count {
                // Value order within a length class is codeword order; the
                // exact symbols come from the packed D array below.
                pairs.push(len as u32);
            }
        }
        let mut symbol_lengths = Vec::with_capacity(total as usize);
        for &len in &pairs {
            let v = r.read_bits(value_bits).ok_or(HuffmanError::Corrupt)?;
            symbol_lengths.push((v, len));
        }
        // D is stored in codeword order, which from_lengths re-derives by
        // sorting (length, value); within a length the canonical order is by
        // value, and serialize wrote them in that same order, so the
        // round-trip is exact.
        Ok(CanonicalCode::from_lengths(symbol_lengths))
    }

    /// The size in bytes of the serialized tables.
    pub fn table_bytes(&self, value_bits: u32) -> u64 {
        self.serialize(value_bits).len() as u64
    }

    /// Total encoded size in bits of a corpus with the given frequencies
    /// (not counting tables). `None` if some value is absent from the code.
    pub fn encoded_bits(&self, freqs: &HashMap<u32, u64>) -> Option<u64> {
        let mut bits = 0u64;
        for (&v, &f) in freqs {
            if f == 0 {
                continue;
            }
            let &(_, len) = self.enc.get(&v)?;
            bits += len as u64 * f;
        }
        Some(bits)
    }
}

/// Computes Huffman codeword lengths for `(symbol, freq)` pairs (freq > 0),
/// deterministically (ties by earlier creation, i.e. by symbol order for
/// leaves).
fn code_lengths(symbols: &[(u32, u64)]) -> Vec<u32> {
    let n = symbols.len();
    if n == 0 {
        return Vec::new();
    }
    if n == 1 {
        return vec![1];
    }
    // Node arena: leaves first, then internal nodes.
    let mut weight: Vec<u64> = symbols.iter().map(|&(_, f)| f).collect();
    let mut parent: Vec<usize> = vec![usize::MAX; n];
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    let mut heap: BinaryHeap<Reverse<(u64, usize)>> =
        (0..n).map(|i| Reverse((weight[i], i))).collect();
    while heap.len() > 1 {
        let Reverse((w1, i1)) = heap.pop().expect("heap nonempty");
        let Reverse((w2, i2)) = heap.pop().expect("heap nonempty");
        let idx = weight.len();
        weight.push(w1 + w2);
        parent.push(usize::MAX);
        parent[i1] = idx;
        parent[i2] = idx;
        heap.push(Reverse((w1 + w2, idx)));
    }
    // Depth of each leaf = number of parent hops to the root.
    (0..n)
        .map(|leaf| {
            let mut depth = 0;
            let mut node = leaf;
            while parent[node] != usize::MAX {
                node = parent[node];
                depth += 1;
            }
            depth.max(1)
        })
        .collect()
}

fn write_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            break;
        }
        out.push(byte | 0x80);
    }
}

fn read_varint(bytes: &[u8], pos: &mut usize) -> Option<u64> {
    let mut v = 0u64;
    let mut shift = 0;
    loop {
        let byte = *bytes.get(*pos)?;
        *pos += 1;
        v |= ((byte & 0x7F) as u64) << shift;
        if byte & 0x80 == 0 {
            return Some(v);
        }
        shift += 7;
        if shift >= 64 {
            return None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use squash_testkit::{cases, Rng};

    fn freqs(pairs: &[(u32, u64)]) -> HashMap<u32, u64> {
        pairs.iter().copied().collect()
    }

    #[test]
    fn paper_worked_example() {
        // N[2] = 3, N[3] = 1, N[5] = 4 gives codewords
        // 00, 01, 10, 110, 11100, 11101, 11110, 11111 (paper §3).
        let code = CanonicalCode::from_lengths(
            [(0u32, 2), (1, 2), (2, 2), (3, 3), (4, 5), (5, 5), (6, 5), (7, 5)],
        );
        let expected = [
            (0b00, 2),
            (0b01, 2),
            (0b10, 2),
            (0b110, 3),
            (0b11100, 5),
            (0b11101, 5),
            (0b11110, 5),
            (0b11111, 5),
        ];
        for (sym, &(code_bits, len)) in (0u32..8).zip(&expected) {
            assert_eq!(code.codeword(sym), Some((code_bits, len)), "symbol {sym}");
        }
        assert_eq!(code.counts(), &[0, 0, 3, 1, 0, 4]);
    }

    #[test]
    fn single_symbol_code() {
        let code = CanonicalCode::from_frequencies(&freqs(&[(42, 10)]));
        assert_eq!(code.codeword(42), Some((0, 1)));
        let mut w = BitWriter::new();
        code.encode(42, &mut w).unwrap();
        code.encode(42, &mut w).unwrap();
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(code.decode(&mut r).unwrap(), 42);
        assert_eq!(code.decode(&mut r).unwrap(), 42);
    }

    #[test]
    fn empty_code_rejects_decode() {
        let code = CanonicalCode::from_frequencies(&HashMap::new());
        assert!(code.is_empty());
        let mut r = BitReader::new(&[0]);
        assert_eq!(code.decode(&mut r), Err(HuffmanError::Corrupt));
    }

    #[test]
    fn encode_unknown_value_fails() {
        let code = CanonicalCode::from_frequencies(&freqs(&[(1, 5), (2, 5)]));
        let mut w = BitWriter::new();
        assert_eq!(
            code.encode(3, &mut w),
            Err(HuffmanError::NotInCode { value: 3 })
        );
    }

    #[test]
    fn decode_eof_mid_codeword() {
        let code = CanonicalCode::from_frequencies(&freqs(&[(1, 1), (2, 1), (3, 2)]));
        let mut r = BitReader::new(&[]);
        assert_eq!(code.decode(&mut r), Err(HuffmanError::UnexpectedEof));
    }

    #[test]
    fn skewed_frequencies_give_shorter_codes_to_common_symbols() {
        let code = CanonicalCode::from_frequencies(&freqs(&[(10, 1000), (20, 10), (30, 1)]));
        let (_, common) = code.codeword(10).unwrap();
        let (_, rare) = code.codeword(30).unwrap();
        assert!(common < rare);
    }

    #[test]
    fn zero_frequencies_excluded() {
        let code = CanonicalCode::from_frequencies(&freqs(&[(1, 5), (2, 0)]));
        assert_eq!(code.len(), 1);
        assert_eq!(code.codeword(2), None);
    }

    #[test]
    fn recurrence_structure_holds() {
        let code =
            CanonicalCode::from_frequencies(&freqs(&[(1, 50), (2, 30), (3, 10), (4, 5), (5, 5)]));
        // Reconstruct b_i and check every codeword of length i lies in
        // [b_i, b_i + N[i]).
        let counts = code.counts();
        let mut b = vec![0u32; counts.len() + 1];
        for i in 2..=counts.len() {
            b[i] = 2 * (b[i - 1] + counts.get(i - 1).copied().unwrap_or(0));
        }
        for &v in code.values() {
            let (cw, len) = code.codeword(v).unwrap();
            let i = len as usize;
            assert!(cw >= b[i] && cw < b[i] + counts[i], "codeword out of block");
        }
    }

    #[test]
    fn serialize_round_trip() {
        let f = freqs(&[(0, 100), (1, 50), (7, 25), (31, 12), (15, 6), (20, 1)]);
        let code = CanonicalCode::from_frequencies(&f);
        let bytes = code.serialize(5);
        let restored = CanonicalCode::deserialize(&bytes, 5).unwrap();
        assert_eq!(restored, code);
    }

    #[test]
    fn encoded_bits_matches_actual_encoding() {
        let f = freqs(&[(1, 10), (2, 7), (3, 3), (4, 1)]);
        let code = CanonicalCode::from_frequencies(&f);
        let predicted = code.encoded_bits(&f).unwrap();
        let mut w = BitWriter::new();
        for (&v, &count) in &f {
            for _ in 0..count {
                code.encode(v, &mut w).unwrap();
            }
        }
        assert_eq!(w.bit_len(), predicted);
    }

    /// `n` distinct symbols below `sym_bound`, with frequencies in
    /// `[1, freq_bound]`.
    fn arb_freqs(
        rng: &mut Rng,
        min_n: u64,
        max_n: u64,
        sym_bound: u64,
        freq_bound: u64,
    ) -> HashMap<u32, u64> {
        let n = rng.range(min_n as i64, max_n as i64) as u64;
        let mut pairs = HashMap::new();
        while (pairs.len() as u64) < n {
            pairs.insert(
                rng.below(sym_bound) as u32,
                1 + rng.below(freq_bound),
            );
        }
        pairs
    }

    #[test]
    fn prop_round_trip() {
        cases(0x48FF, 128, |rng| {
            let pairs = arb_freqs(rng, 1, 49, 1000, 10_000);
            let code = CanonicalCode::from_frequencies(&pairs);
            let symbols: Vec<u32> = pairs.keys().copied().collect();
            let msg: Vec<u32> = rng.vec(0, 200, |r| *r.pick(&symbols));
            let mut w = BitWriter::new();
            for &s in &msg {
                code.encode(s, &mut w).unwrap();
            }
            let bytes = w.into_bytes();
            let mut r = BitReader::new(&bytes);
            for &s in &msg {
                assert_eq!(code.decode(&mut r).unwrap(), s);
            }
        });
    }

    #[test]
    fn prop_kraft_equality() {
        cases(0x5242, 128, |rng| {
            let pairs = arb_freqs(rng, 1, 39, 500, 1000);
            let code = CanonicalCode::from_frequencies(&pairs);
            if pairs.len() > 1 {
                // Huffman codes are complete: Kraft sum is exactly 1.
                let mut sum = 0f64;
                for &v in code.values() {
                    let (_, len) = code.codeword(v).unwrap();
                    sum += (0.5f64).powi(len as i32);
                }
                assert!((sum - 1.0).abs() < 1e-9, "Kraft sum {sum}");
            }
        });
    }

    #[test]
    fn prop_serialize_round_trip() {
        cases(0x5E51, 128, |rng| {
            let pairs = arb_freqs(rng, 1, 59, 65536, 100);
            let code = CanonicalCode::from_frequencies(&pairs);
            let bytes = code.serialize(16);
            let restored = CanonicalCode::deserialize(&bytes, 16).unwrap();
            assert_eq!(restored, code);
        });
    }

    #[test]
    fn prop_optimality_vs_entropy() {
        cases(0x0971, 128, |rng| {
            // Huffman is within 1 bit/symbol of the entropy bound.
            let pairs = arb_freqs(rng, 2, 29, 100, 10_000);
            let code = CanonicalCode::from_frequencies(&pairs);
            let total: u64 = pairs.values().sum();
            let entropy: f64 = pairs
                .values()
                .map(|&f| {
                    let p = f as f64 / total as f64;
                    -p * p.log2()
                })
                .sum();
            let bits = code.encoded_bits(&pairs).unwrap() as f64 / total as f64;
            assert!(bits >= entropy - 1e-9, "below entropy: {bits} < {entropy}");
            assert!(bits <= entropy + 1.0 + 1e-9, "more than 1 bit over entropy");
        });
    }
}
