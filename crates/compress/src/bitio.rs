//! MSB-first bit-level I/O over byte buffers.

/// Accumulates bits most-significant-first into a byte vector.
///
/// # Examples
///
/// ```
/// use squash_compress::{BitReader, BitWriter};
///
/// let mut w = BitWriter::new();
/// w.write_bits(0b101, 3);
/// w.write_bits(0xF, 4);
/// let bytes = w.into_bytes();
/// let mut r = BitReader::new(&bytes);
/// assert_eq!(r.read_bits(3).unwrap(), 0b101);
/// assert_eq!(r.read_bits(4).unwrap(), 0xF);
/// ```
#[derive(Debug, Clone, Default)]
pub struct BitWriter {
    bytes: Vec<u8>,
    /// Pending bits not yet flushed to `bytes`, held in the low `acc_bits`
    /// bits of `acc` in stream order (the first pending bit is the most
    /// significant of them). Invariant: `acc_bits < 8` between calls, so a
    /// 32-bit write never overflows the accumulator.
    acc: u64,
    /// Number of pending bits in `acc` (0..8 between calls).
    acc_bits: u32,
}

impl BitWriter {
    /// Creates an empty writer.
    pub fn new() -> BitWriter {
        BitWriter::default()
    }

    /// Appends a single bit (any nonzero `bit` writes 1).
    #[inline]
    pub fn write_bit(&mut self, bit: u32) {
        self.write_bits(u32::from(bit != 0), 1);
    }

    /// Appends the low `count` bits of `value`, most significant first.
    ///
    /// # Panics
    ///
    /// Panics if `count > 32`.
    #[inline]
    pub fn write_bits(&mut self, value: u32, count: u32) {
        assert!(count <= 32, "cannot write more than 32 bits at once");
        if count == 0 {
            return;
        }
        let masked = if count == 32 {
            value
        } else {
            value & ((1u32 << count) - 1)
        };
        // acc_bits < 8 and count <= 32, so the shift stays within 64 bits.
        self.acc = (self.acc << count) | masked as u64;
        self.acc_bits += count;
        while self.acc_bits >= 8 {
            self.acc_bits -= 8;
            self.bytes.push((self.acc >> self.acc_bits) as u8);
        }
    }

    /// The number of bits written so far.
    pub fn bit_len(&self) -> u64 {
        self.bytes.len() as u64 * 8 + self.acc_bits as u64
    }

    /// Appends every bit of `other` after this writer's bits, as if the two
    /// streams had been written into one writer in sequence. Used to merge
    /// independently encoded regions into the single compressed blob in
    /// deterministic region order.
    pub fn append(&mut self, other: &BitWriter) {
        if self.acc_bits == 0 {
            self.bytes.extend_from_slice(&other.bytes);
        } else {
            for &b in &other.bytes {
                self.write_bits(b as u32, 8);
            }
        }
        if other.acc_bits > 0 {
            self.write_bits(
                (other.acc & ((1u64 << other.acc_bits) - 1)) as u32,
                other.acc_bits,
            );
        }
    }

    /// A zero-padded copy of the bytes written so far — what
    /// [`BitWriter::into_bytes`] would return — without consuming the
    /// writer. Lets a region be verified against its own encoding before
    /// the writer is merged into the blob.
    pub fn padded_bytes(&self) -> Vec<u8> {
        let mut out = self.bytes.clone();
        if self.acc_bits > 0 {
            let pad = 8 - self.acc_bits;
            out.push(((self.acc << pad) & 0xFF) as u8);
        }
        out
    }

    /// Finishes the stream (zero-padding the final byte) and returns the
    /// bytes.
    pub fn into_bytes(mut self) -> Vec<u8> {
        if self.acc_bits > 0 {
            let pad = 8 - self.acc_bits;
            self.bytes.push(((self.acc << pad) & 0xFF) as u8);
        }
        self.bytes
    }
}

/// Reads bits most-significant-first from a byte slice.
///
/// The reader keeps a 64-bit *window* over the underlying bytes so that
/// multi-bit reads are a shift and a mask instead of a per-bit loop. The
/// window is refilled word-at-a-time on demand by [`BitReader::peek_bits`];
/// [`BitReader::consume`] then advances the logical position. `bits_read()`
/// always reflects exactly the bits consumed, never the bits buffered, so
/// the per-bit cycle accounting of the simulated decompressor is unaffected
/// by the buffering.
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    bytes: &'a [u8],
    /// Total bit length of `bytes`, precomputed so the hot decode path can
    /// bound-check with a single add-and-compare.
    total_bits: u64,
    /// Next bit position from the start of the slice.
    pos: u64,
    /// The bits at `pos` onward, MSB-aligned: `cur` holds bits
    /// `[pos, pos + avail)` of the input in its top `avail` bits,
    /// zero-padded past the end of `bytes`. Peek is then a single shift.
    cur: u64,
    /// Number of buffered *input* bits in `cur` (0 = window not loaded).
    /// Invariant: `avail <= remaining()`, so a codeword of length
    /// `<= avail` is known to be made of real stream bits — the decode
    /// fast path's EOF check is one register compare (see
    /// [`BitReader::commit_peeked`]).
    avail: u32,
}

impl<'a> BitReader<'a> {
    /// Creates a reader positioned at the first bit of `bytes`.
    pub fn new(bytes: &'a [u8]) -> BitReader<'a> {
        BitReader::at_bit(bytes, 0)
    }

    /// Creates a reader positioned at bit `bit_offset`.
    pub fn at_bit(bytes: &'a [u8], bit_offset: u64) -> BitReader<'a> {
        BitReader {
            bytes,
            total_bits: bytes.len() as u64 * 8,
            pos: bit_offset,
            cur: 0,
            avail: 0,
        }
    }

    /// The number of bits consumed so far (relative to the start of the
    /// slice). The decompressor's cycle cost model charges per bit read.
    pub fn bits_read(&self) -> u64 {
        self.pos
    }

    /// The number of unconsumed bits left in the input.
    #[inline]
    pub fn remaining(&self) -> u64 {
        self.total_bits.saturating_sub(self.pos)
    }

    /// Reloads the window so `cur` holds the 64 bits starting at `pos`
    /// (zero-padded past the end of the input).
    fn refill(&mut self) {
        let base = (self.pos / 8) as usize;
        let word = match self.bytes.get(base..base + 8) {
            Some(w) => u64::from_be_bytes(w.try_into().expect("8-byte slice")),
            // Within 8 bytes of the end: assemble what's left, zero-padded.
            None => {
                let mut w = 0u64;
                for i in 0..8 {
                    let byte = self.bytes.get(base + i).copied().unwrap_or(0);
                    w = (w << 8) | byte as u64;
                }
                w
            }
        };
        let skew = (self.pos % 8) as u32;
        self.cur = word << skew;
        // Clamped to the input: near the end `cur` still zero-pads, but
        // `avail` only counts real bits (see the field invariant).
        self.avail = (self.remaining()).min((64 - skew) as u64) as u32;
    }

    /// Advances the window past `count` bits just consumed (`pos` already
    /// moved). Dropping the whole window is always safe — it just forces a
    /// refill on the next peek.
    #[inline]
    fn advance_window(&mut self, count: u32) {
        if count < self.avail {
            self.cur <<= count;
            self.avail -= count;
        } else {
            self.avail = 0;
        }
    }

    /// Returns the next `count` bits without consuming them, MSB-first in
    /// the low bits of the result. Bits past the end of the input read as
    /// zero; check [`BitReader::remaining`] to classify end-of-input.
    ///
    /// # Panics
    ///
    /// Panics if `count > 32`.
    #[inline]
    pub fn peek_bits(&mut self, count: u32) -> u32 {
        assert!(count <= 32, "cannot peek more than 32 bits at once");
        if count == 0 {
            return 0;
        }
        if self.avail < count {
            self.refill();
        }
        (self.cur >> (64 - count)) as u32
    }

    /// Advances past `count` bits previously seen with
    /// [`BitReader::peek_bits`].
    ///
    /// # Panics
    ///
    /// Panics if fewer than `count` bits remain: consuming padding would
    /// corrupt the `bits_read()` accounting.
    #[inline]
    pub fn consume(&mut self, count: u32) {
        assert!(
            count as u64 <= self.remaining(),
            "cannot consume past end of input"
        );
        self.pos += count as u64;
        self.advance_window(count);
    }

    /// [`BitReader::peek_bits`] without the public-API assertions, for the
    /// table decoder's per-symbol path. Contract: `1 <= count <= 32`.
    #[inline]
    pub(crate) fn peek_code(&mut self, count: u32) -> u32 {
        debug_assert!((1..=32).contains(&count));
        if self.avail < count {
            self.refill();
        }
        (self.cur >> (64 - count)) as u32
    }

    /// Commits `len` bits of the window after a `peek_code(count)` with
    /// `len <= count`, returning whether they were real input bits. Thanks
    /// to the `avail <= remaining()` invariant this is a single register
    /// compare: a fresh peek leaves `avail >= count` unless the input has
    /// fewer than `count` bits left, in which case `avail` *is* the exact
    /// remainder — so `len <= avail` iff `len <= remaining()`.
    #[inline]
    pub(crate) fn commit_peeked(&mut self, len: u32) -> bool {
        debug_assert!(len <= 32);
        if len > self.avail {
            return false;
        }
        self.cur <<= len;
        self.avail -= len;
        self.pos += len as u64;
        true
    }

    /// Advances past `count` bits if at least that many remain, returning
    /// whether it did; a refusal consumes nothing. The checked counterpart
    /// of [`BitReader::consume`] for decode fast paths that must degrade to
    /// a fallback instead of panicking.
    #[inline]
    pub fn try_consume(&mut self, count: u32) -> bool {
        if self.pos + count as u64 > self.total_bits {
            return false;
        }
        self.pos += count as u64;
        self.advance_window(count);
        true
    }

    /// Reads one bit. Returns `None` at end of input.
    #[inline]
    pub fn read_bit(&mut self) -> Option<u32> {
        let byte = self.bytes.get((self.pos / 8) as usize)?;
        let bit = (byte >> (7 - (self.pos % 8))) & 1;
        self.pos += 1;
        // The window is keyed to `pos`; drop it rather than maintain it so
        // the per-bit path stays as lean as the pre-window reader.
        self.avail = 0;
        Some(bit as u32)
    }

    /// Reads `count` bits into the low bits of the result, MSB-first.
    /// Returns `None` if the input is exhausted first; a failed read
    /// consumes nothing (`bits_read()` is unchanged).
    ///
    /// # Panics
    ///
    /// Panics if `count > 32`.
    #[inline]
    pub fn read_bits(&mut self, count: u32) -> Option<u32> {
        assert!(count <= 32, "cannot read more than 32 bits at once");
        if count as u64 > self.remaining() {
            return None;
        }
        let v = self.peek_bits(count);
        self.pos += count as u64;
        self.advance_window(count);
        Some(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use squash_testkit::{cases, Rng};

    #[test]
    fn empty_writer_produces_nothing() {
        let w = BitWriter::new();
        assert_eq!(w.bit_len(), 0);
        assert!(w.into_bytes().is_empty());
    }

    #[test]
    fn single_bits_pack_msb_first() {
        let mut w = BitWriter::new();
        for b in [1, 0, 1, 1, 0, 0, 0, 1, 1] {
            w.write_bit(b);
        }
        assert_eq!(w.bit_len(), 9);
        let bytes = w.into_bytes();
        assert_eq!(bytes, vec![0b1011_0001, 0b1000_0000]);
    }

    #[test]
    fn reader_stops_at_end() {
        let mut r = BitReader::new(&[0xFF]);
        for _ in 0..8 {
            assert_eq!(r.read_bit(), Some(1));
        }
        assert_eq!(r.read_bit(), None);
        assert_eq!(r.bits_read(), 8);
    }

    #[test]
    fn read_bits_partial_failure_is_none() {
        let mut r = BitReader::new(&[0xAA]);
        assert_eq!(r.read_bits(9), None);
    }

    /// Regression: a failed `read_bits` used to consume the bits it managed
    /// to read before hitting end-of-input, leaving the reader at a garbage
    /// position. Failed reads must be side-effect-free.
    #[test]
    fn failed_read_bits_consumes_nothing() {
        let mut r = BitReader::new(&[0b1010_1010]);
        assert_eq!(r.read_bits(3), Some(0b101));
        assert_eq!(r.bits_read(), 3);
        // 5 bits remain; asking for more must fail without moving.
        assert_eq!(r.read_bits(6), None);
        assert_eq!(r.bits_read(), 3, "failed read must not consume bits");
        // The reader is still usable from the same position.
        assert_eq!(r.read_bits(5), Some(0b01010));
        assert_eq!(r.bits_read(), 8);
        assert_eq!(r.read_bits(1), None);
        assert_eq!(r.bits_read(), 8);
    }

    #[test]
    fn peek_does_not_consume() {
        let mut r = BitReader::new(&[0b1100_0101, 0b0011_1010]);
        assert_eq!(r.peek_bits(6), 0b110001);
        assert_eq!(r.bits_read(), 0);
        assert_eq!(r.peek_bits(6), 0b110001, "peek is repeatable");
        r.consume(2);
        assert_eq!(r.bits_read(), 2);
        assert_eq!(r.peek_bits(10), 0b0001010011);
        r.consume(10);
        assert_eq!(r.read_bits(4), Some(0b1010));
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn peek_past_end_is_zero_padded() {
        let mut r = BitReader::new(&[0xFF]);
        assert_eq!(r.remaining(), 8);
        assert_eq!(r.peek_bits(12), 0b1111_1111_0000);
        let mut empty = BitReader::new(&[]);
        assert_eq!(empty.peek_bits(32), 0);
        assert_eq!(empty.remaining(), 0);
    }

    #[test]
    fn peek_spanning_window_refills() {
        // 16 bytes of alternating patterns; peeks at positions that force
        // the 64-bit window to reload mid-stream.
        let bytes: Vec<u8> = (0..16).map(|i| if i % 2 == 0 { 0xA5 } else { 0x3C }).collect();
        let mut a = BitReader::new(&bytes);
        let mut b = BitReader::new(&bytes);
        let mut read = 0u64;
        while read < bytes.len() as u64 * 8 {
            let n = ((read % 13) + 1).min(bytes.len() as u64 * 8 - read) as u32;
            let peeked = a.peek_bits(n);
            a.consume(n);
            assert_eq!(Some(peeked), b.read_bits(n), "at bit {read}");
            read += n as u64;
        }
        assert_eq!(a.bits_read(), b.bits_read());
    }

    #[test]
    fn prop_peek_consume_matches_read_bits() {
        cases(0xB1712, 256, |rng: &mut Rng| {
            let bytes: Vec<u8> = rng.vec(0, 64, |r| r.u8());
            let mut a = BitReader::new(&bytes);
            let mut b = BitReader::new(&bytes);
            loop {
                let n = rng.range(1, 32) as u32;
                if n as u64 > a.remaining() {
                    assert_eq!(b.read_bits(n), None);
                    let before = b.bits_read();
                    assert_eq!(b.bits_read(), before);
                    break;
                }
                let v = a.peek_bits(n);
                a.consume(n);
                assert_eq!(b.read_bits(n), Some(v));
                assert_eq!(a.bits_read(), b.bits_read());
            }
        });
    }

    #[test]
    fn append_matches_sequential_writes() {
        let mut seq = BitWriter::new();
        seq.write_bits(0b10110, 5);
        seq.write_bits(0xABCD, 16);
        let mut a = BitWriter::new();
        a.write_bits(0b10110, 5);
        let mut b = BitWriter::new();
        b.write_bits(0xABCD, 16);
        a.append(&b);
        assert_eq!(a.bit_len(), seq.bit_len());
        assert_eq!(a.into_bytes(), seq.into_bytes());
    }

    #[test]
    fn prop_append_chain_equals_one_writer() {
        cases(0xA99E, 256, |rng: &mut Rng| {
            // Several independently written fragments, appended in order,
            // must be bit-identical to one sequential writer — the invariant
            // the parallel region encoder relies on.
            let fragments: Vec<Vec<(u32, u32)>> = rng.vec(0, 6, |r| {
                r.vec(0, 24, |r2| (r2.u32(), r2.range(1, 32) as u32))
            });
            let mut seq = BitWriter::new();
            let mut merged = BitWriter::new();
            for frag in &fragments {
                let mut w = BitWriter::new();
                for &(v, n) in frag {
                    seq.write_bits(v, n);
                    w.write_bits(v, n);
                }
                merged.append(&w);
            }
            assert_eq!(merged.bit_len(), seq.bit_len());
            assert_eq!(merged.into_bytes(), seq.into_bytes());
        });
    }

    #[test]
    fn at_bit_offsets_into_stream() {
        let mut w = BitWriter::new();
        w.write_bits(0b1010_1010_1010, 12);
        let bytes = w.into_bytes();
        let mut r = BitReader::at_bit(&bytes, 4);
        assert_eq!(r.read_bits(4).unwrap(), 0b1010);
        assert_eq!(r.bits_read(), 8);
    }

    #[test]
    fn prop_round_trip() {
        cases(0xB1710, 256, |rng: &mut Rng| {
            let values: Vec<(u32, u32)> =
                rng.vec(0, 64, |r| (r.u32(), r.range(1, 32) as u32));
            let mut w = BitWriter::new();
            for &(v, n) in &values {
                let masked = if n == 32 { v } else { v & ((1 << n) - 1) };
                w.write_bits(masked, n);
            }
            let total: u64 = values.iter().map(|&(_, n)| n as u64).sum();
            assert_eq!(w.bit_len(), total);
            let padded = w.padded_bytes();
            let bytes = w.into_bytes();
            assert_eq!(padded, bytes, "padded_bytes must match into_bytes");
            let mut r = BitReader::new(&bytes);
            for &(v, n) in &values {
                let masked = if n == 32 { v } else { v & ((1 << n) - 1) };
                assert_eq!(r.read_bits(n), Some(masked));
            }
        });
    }
}
