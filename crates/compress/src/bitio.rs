//! MSB-first bit-level I/O over byte buffers.

/// Accumulates bits most-significant-first into a byte vector.
///
/// # Examples
///
/// ```
/// use squash_compress::{BitReader, BitWriter};
///
/// let mut w = BitWriter::new();
/// w.write_bits(0b101, 3);
/// w.write_bits(0xF, 4);
/// let bytes = w.into_bytes();
/// let mut r = BitReader::new(&bytes);
/// assert_eq!(r.read_bits(3).unwrap(), 0b101);
/// assert_eq!(r.read_bits(4).unwrap(), 0xF);
/// ```
#[derive(Debug, Clone, Default)]
pub struct BitWriter {
    bytes: Vec<u8>,
    /// Bits used in the final, partial byte (0..8; 0 means byte-aligned).
    partial: u32,
}

impl BitWriter {
    /// Creates an empty writer.
    pub fn new() -> BitWriter {
        BitWriter::default()
    }

    /// Appends a single bit (any nonzero `bit` writes 1).
    #[inline]
    pub fn write_bit(&mut self, bit: u32) {
        if self.partial == 0 {
            self.bytes.push(0);
        }
        if bit != 0 {
            let last = self.bytes.last_mut().expect("partial byte exists");
            *last |= 1 << (7 - self.partial);
        }
        self.partial = (self.partial + 1) % 8;
    }

    /// Appends the low `count` bits of `value`, most significant first.
    ///
    /// # Panics
    ///
    /// Panics if `count > 32`.
    pub fn write_bits(&mut self, value: u32, count: u32) {
        assert!(count <= 32, "cannot write more than 32 bits at once");
        for i in (0..count).rev() {
            self.write_bit((value >> i) & 1);
        }
    }

    /// The number of bits written so far.
    pub fn bit_len(&self) -> u64 {
        let full = self.bytes.len() as u64 * 8;
        if self.partial == 0 {
            full
        } else {
            full - (8 - self.partial as u64)
        }
    }

    /// Finishes the stream (zero-padding the final byte) and returns the
    /// bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }
}

/// Reads bits most-significant-first from a byte slice.
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    bytes: &'a [u8],
    /// Next bit position from the start of the slice.
    pos: u64,
}

impl<'a> BitReader<'a> {
    /// Creates a reader positioned at the first bit of `bytes`.
    pub fn new(bytes: &'a [u8]) -> BitReader<'a> {
        BitReader { bytes, pos: 0 }
    }

    /// Creates a reader positioned at bit `bit_offset`.
    pub fn at_bit(bytes: &'a [u8], bit_offset: u64) -> BitReader<'a> {
        BitReader {
            bytes,
            pos: bit_offset,
        }
    }

    /// The number of bits consumed so far (relative to the start of the
    /// slice). The decompressor's cycle cost model charges per bit read.
    pub fn bits_read(&self) -> u64 {
        self.pos
    }

    /// Reads one bit. Returns `None` at end of input.
    #[inline]
    pub fn read_bit(&mut self) -> Option<u32> {
        let byte = self.bytes.get((self.pos / 8) as usize)?;
        let bit = (byte >> (7 - (self.pos % 8))) & 1;
        self.pos += 1;
        Some(bit as u32)
    }

    /// Reads `count` bits into the low bits of the result, MSB-first.
    /// Returns `None` if the input is exhausted first.
    ///
    /// # Panics
    ///
    /// Panics if `count > 32`.
    pub fn read_bits(&mut self, count: u32) -> Option<u32> {
        assert!(count <= 32, "cannot read more than 32 bits at once");
        let mut v = 0u32;
        for _ in 0..count {
            v = (v << 1) | self.read_bit()?;
        }
        Some(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use squash_testkit::{cases, Rng};

    #[test]
    fn empty_writer_produces_nothing() {
        let w = BitWriter::new();
        assert_eq!(w.bit_len(), 0);
        assert!(w.into_bytes().is_empty());
    }

    #[test]
    fn single_bits_pack_msb_first() {
        let mut w = BitWriter::new();
        for b in [1, 0, 1, 1, 0, 0, 0, 1, 1] {
            w.write_bit(b);
        }
        assert_eq!(w.bit_len(), 9);
        let bytes = w.into_bytes();
        assert_eq!(bytes, vec![0b1011_0001, 0b1000_0000]);
    }

    #[test]
    fn reader_stops_at_end() {
        let mut r = BitReader::new(&[0xFF]);
        for _ in 0..8 {
            assert_eq!(r.read_bit(), Some(1));
        }
        assert_eq!(r.read_bit(), None);
        assert_eq!(r.bits_read(), 8);
    }

    #[test]
    fn read_bits_partial_failure_is_none() {
        let mut r = BitReader::new(&[0xAA]);
        assert_eq!(r.read_bits(9), None);
    }

    #[test]
    fn at_bit_offsets_into_stream() {
        let mut w = BitWriter::new();
        w.write_bits(0b1010_1010_1010, 12);
        let bytes = w.into_bytes();
        let mut r = BitReader::at_bit(&bytes, 4);
        assert_eq!(r.read_bits(4).unwrap(), 0b1010);
        assert_eq!(r.bits_read(), 8);
    }

    #[test]
    fn prop_round_trip() {
        cases(0xB1710, 256, |rng: &mut Rng| {
            let values: Vec<(u32, u32)> =
                rng.vec(0, 64, |r| (r.u32(), r.range(1, 32) as u32));
            let mut w = BitWriter::new();
            for &(v, n) in &values {
                let masked = if n == 32 { v } else { v & ((1 << n) - 1) };
                w.write_bits(masked, n);
            }
            let total: u64 = values.iter().map(|&(_, n)| n as u64).sum();
            assert_eq!(w.bit_len(), total);
            let bytes = w.into_bytes();
            let mut r = BitReader::new(&bytes);
            for &(v, n) in &values {
                let masked = if n == 32 { v } else { v & ((1 << n) - 1) };
                assert_eq!(r.read_bits(n), Some(masked));
            }
        });
    }
}
