//! # squash-compress — splitting-streams code compression
//!
//! The compression scheme of the paper's §3: a machine-code sequence is
//! *split* into one stream per instruction field type (15 streams for
//! SRA, matching the paper's Alpha count), each stream is Huffman-coded with
//! a **canonical Huffman code** built for that stream, and the per-stream
//! codeword sequences are *merged* back into a single bit sequence driven by
//! the opcode stream: each instruction contributes its opcode codeword
//! followed by the codewords of exactly the fields that opcode implies.
//!
//! Decompression therefore needs only the tables `N[i]` (number of codewords
//! of length `i`) and `D[j]` (values ordered by codeword) per stream, and the
//! tight `DECODE()` loop reproduced verbatim from the paper in
//! [`CanonicalCode::decode`].
//!
//! A [`Mtf`] (move-to-front) pre-transform is available per stream, matching
//! the paper's observation that MTF can help some streams at the price of a
//! bigger, slower decompressor; it is off by default.
//!
//! # Examples
//!
//! ```
//! use squash_isa::{AluOp, Inst, Reg};
//! use squash_compress::StreamModel;
//!
//! let insts = vec![
//!     Inst::Imm { func: AluOp::Add, ra: Reg::A0, lit: 1, rc: Reg::A0 },
//!     Inst::Opr { func: AluOp::Sub, ra: Reg::A0, rb: Reg::A1, rc: Reg::V0 },
//! ];
//! let model = StreamModel::train(&[&insts]);
//! let bits = model.compress_region(&insts).unwrap();
//! let (decoded, _) = model.decompress_region(&bits, 0).unwrap();
//! assert_eq!(decoded, insts);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

mod bitio;
mod huffman;
mod mtf;
mod streams;

pub use bitio::{BitReader, BitWriter};
pub use huffman::{CanonicalCode, HuffmanError};
pub use mtf::Mtf;
pub use streams::{CompressError, StreamModel, StreamOptions, StreamStats};
