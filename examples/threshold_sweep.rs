//! The paper's central tradeoff on one benchmark: sweep the cold-code
//! threshold θ and print code size against execution time, both normalized
//! to the squeezed baseline (compare Figures 6 and 7).
//!
//! ```sh
//! cargo run --release --example threshold_sweep [workload]
//! ```

use squash_repro::squash::{pipeline, Squasher};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args().nth(1).unwrap_or_else(|| "gsm".to_string());
    let workload = squash_repro::workloads::by_name(&name)
        .unwrap_or_else(|| panic!("unknown workload `{name}`"));
    let (program, _) = workload.squeezed();
    let profile = pipeline::profile(&program, &[workload.profiling_input()])?;
    let timing_input = workload.timing_input();
    let baseline = pipeline::run_original(&program, &timing_input)?;
    let baseline_bytes = program.text_words() * 4;

    println!("θ sweep for `{name}` (size and time normalized to squeezed baseline)\n");
    println!("| θ      | regions | size  | time  | decompressions |");
    println!("|--------|--------:|------:|------:|---------------:|");
    for theta in [0.0, 1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 1e-1, 1.0] {
        let options = squash_repro::squash::SquashOptions {
            theta,
            ..Default::default()
        };
        let squashed = Squasher::new(&program, &profile, &options)?.finish()?;
        let run = pipeline::run_squashed(&squashed, &timing_input)?;
        assert_eq!(run.output, baseline.output, "behaviour must be preserved");
        println!(
            "| {:6} | {:7} | {:.3} | {:.3} | {:14} |",
            if theta == 0.0 { "0".into() } else { format!("{theta:.0e}") },
            squashed.stats.regions,
            squashed.stats.footprint.total() as f64 / baseline_bytes as f64,
            run.cycles as f64 / baseline.cycles as f64,
            run.runtime.decompressions,
        );
    }
    println!("\nEvery row's output was verified byte-identical to the baseline.");
    Ok(())
}
