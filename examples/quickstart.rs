//! Quickstart: compress the cold half of a tiny program and watch the
//! decompressor run.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use squash_repro::squash::{pipeline, SquashOptions, Squasher};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A program with a hot loop and a cold error-formatting path.
    let program = squash_repro::minicc::build_program(&[r#"
        int format_report(int code) {
            int buf[8];
            int i;
            for (i = 0; i < 8; i = i + 1) buf[i] = (code >> i) & 1;
            for (i = 7; i >= 0; i = i - 1) putb('0' + buf[i]);
            putb('\n');
            return code;
        }
        int main() {
            int c;
            int n = 0;
            while ((c = getb()) >= 0) {
                n = n + (c & 1);
            }
            if (n > 100) format_report(n);   // cold: needs a long input
            return n % 64;
        }
    "#])?;

    // Profile on a short input (the cold path never runs)…
    let profile = pipeline::profile(&program, &[b"hello".to_vec()])?;

    // …squash at θ = 0 (compress only never-executed code)…
    let options = SquashOptions::default();
    let squashed = Squasher::new(&program, &profile, &options)?.finish()?;
    println!("footprint breakdown:\n{}\n", squashed.stats.footprint);
    println!(
        "baseline {} B → squashed {} B ({:+.1}%)",
        squashed.stats.baseline_bytes,
        squashed.stats.footprint.total(),
        -100.0 * squashed.stats.reduction(),
    );
    println!(
        "(the decompressor/buffer overhead dominates a toy program — it amortizes
         over real programs; see `cargo run --release --example adpcm_pipeline`)"
    );

    // …and run it on a *long* input that takes the cold path.
    let long_input: Vec<u8> = (0..300).map(|i| (i % 251) as u8).collect();
    let original = pipeline::run_original(&program, &long_input)?;
    let compressed = pipeline::run_squashed(&squashed, &long_input)?;
    assert_eq!(original.output, compressed.output);
    assert_eq!(original.status, compressed.status);
    println!(
        "\ncold path exercised: {} decompression(s), outputs identical ✓",
        compressed.runtime.decompressions
    );
    println!(
        "cycles: {} original vs {} squashed ({:+.2}%)",
        original.cycles,
        compressed.cycles,
        100.0 * (compressed.cycles as f64 / original.cycles as f64 - 1.0)
    );
    Ok(())
}
