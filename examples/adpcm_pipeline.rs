//! The full evaluation pipeline on one benchmark (`adpcm`), end to end:
//! compile → squeeze → profile → squash → verify → time — the same steps
//! the paper's Figures 6 and 7 aggregate over all eleven programs.
//!
//! ```sh
//! cargo run --release --example adpcm_pipeline
//! ```

use squash_repro::squash::{pipeline, Squasher};
use squash_repro::squeeze;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workload = squash_repro::workloads::by_name("adpcm").expect("workload exists");

    // 1. Compile and squeeze (the paper's baseline form).
    let raw = workload.program();
    let (program, squeeze_stats) = squeeze::squeeze(&raw);
    println!(
        "compile:  {} instructions; squeeze: {} ({} unreachable functions removed)",
        squeeze_stats.input_words, squeeze_stats.output_words, squeeze_stats.funcs_removed
    );

    // 2. Profile on the profiling input.
    let profiling_input = workload.profiling_input();
    let profile = pipeline::profile(&program, &[profiling_input])?;
    println!(
        "profile:  {} instructions executed",
        profile.total_instructions
    );

    // 3. Squash at θ = 0.
    let options = squash_repro::squash::SquashOptions::default();
    let squashed = Squasher::new(&program, &profile, &options)?.finish()?;
    let stats = &squashed.stats;
    println!(
        "squash:   {} regions over {} blocks, {} entry stubs, {:.1}% of code cold",
        stats.regions,
        stats.compressed_blocks,
        stats.entry_stubs,
        100.0 * stats.cold_words as f64 / stats.total_words as f64,
    );
    println!("\nfootprint:\n{}\n", stats.footprint);
    println!(
        "size:     {} B → {} B ({:.1}% smaller)",
        stats.baseline_bytes,
        stats.footprint.total(),
        100.0 * stats.reduction()
    );

    // 4. Verify + time on the (different, larger) timing input.
    let timing_input = workload.timing_input();
    let original = pipeline::run_original(&program, &timing_input)?;
    let compressed = pipeline::run_squashed(&squashed, &timing_input)?;
    assert_eq!(original.output, compressed.output, "behaviour must match");
    println!(
        "time:     {} cycles original, {} squashed ({:+.2}%), {} decompressions",
        original.cycles,
        compressed.cycles,
        100.0 * (compressed.cycles as f64 / original.cycles as f64 - 1.0),
        compressed.runtime.decompressions,
    );
    Ok(())
}
