//! A look inside the machinery: show the compressible regions squash forms
//! for a small program, the entry stubs, one region's buffer image
//! (disassembled), its compressed size, and the live runtime-buffer content
//! after a decompression.
//!
//! ```sh
//! cargo run --release --example region_explorer
//! ```

use squash_repro::isa::disasm;
use squash_repro::squash::{pipeline, runtime::SquashRuntime, Squasher};
use squash_repro::vm::Vm;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = squash_repro::minicc::build_program(&[r#"
        int rare_a(int x) { return (x * 17 + 3) % 257; }
        int rare_b(int x) { return rare_a(x) + rare_a(x + 1); }
        int main() {
            int c = getb();
            int i;
            int s = 0;
            for (i = 0; i < 200; i = i + 1) s = s + (i ^ c);
            if (c == '!') s = s + rare_b(c);
            return s & 127;
        }
    "#])?;
    let profile = pipeline::profile(&program, &[b"x".to_vec()])?;
    let options = squash_repro::squash::SquashOptions::default();
    let squasher = Squasher::new(&program, &profile, &options)?;

    // Cold map.
    println!("cold blocks per function (θ = 0):");
    for (fid, f) in squasher.program().iter_funcs() {
        let cold: Vec<String> = squasher.cold().cold[fid.0]
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c)
            .map(|(b, _)| b.to_string())
            .collect();
        println!("  {:10} {} blocks, cold: [{}]", f.name, f.blocks.len(), cold.join(", "));
    }

    let squashed = squasher.finish()?;
    println!("\n{} regions, {} entry stubs", squashed.stats.regions, squashed.stats.entry_stubs);
    println!(
        "compressed blob: {} B for {} input words ({:.0}% of raw)",
        squashed.stats.footprint.compressed,
        squashed.stats.compressed_input_words,
        100.0 * squashed.stats.footprint.compressed as f64
            / (squashed.stats.compressed_input_words * 4).max(1) as f64,
    );

    // Decompress region 0 through the real runtime and dump the buffer.
    let rt_cfg = squashed.runtime.clone();
    let (insts, bits) = rt_cfg.model.decompress_region(&rt_cfg.blob, rt_cfg.bit_offsets[0])?;
    println!(
        "\nregion 0 buffer image ({} instructions from {} compressed bits):",
        insts.len(),
        bits
    );
    let words: Vec<u32> = insts.iter().map(|i| i.encode()).collect();
    print!("{}", disasm::dump(rt_cfg.buffer_base, &words));

    // Run the squashed program on the cold-path input and report what the
    // runtime did.
    let mut vm = Vm::new(squashed.min_mem_size(1 << 18));
    for (base, bytes) in &squashed.segments {
        vm.write_bytes(*base, bytes);
    }
    vm.set_pc(squashed.entry);
    vm.set_input(b"!".to_vec());
    let mut service = SquashRuntime::new(squashed.runtime.clone());
    let out = vm.run_with(&mut service)?;
    println!("\ncold-path run: exit {}, runtime stats: {:?}", out.status, service.stats());
    Ok(())
}
